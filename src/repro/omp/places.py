"""``OMP_PLACES`` parsing and place-list construction.

Supports the OpenMP 5.x forms the paper's experiments need:

* abstract names: ``threads``, ``cores``, ``sockets``, ``numa_domains``,
  each with an optional count, e.g. ``cores(16)``;
* explicit lists: ``{0,1,2,3},{4-7}``, interval notation
  ``{0:4}`` (= ``{0,1,2,3}``), and place intervals ``{0:4}:8:4``
  (8 places of 4 CPUs, starting CPUs 0,4,8,...).

Place ordering for ``threads`` is **topological** (core-major: all hardware
threads of core 0, then core 1, ...), matching how libgomp/hwloc enumerate
places — this is what makes ``OMP_PLACES=threads OMP_PROC_BIND=close`` pack
SMT siblings (the paper's MT configuration) while ``OMP_PLACES=cores``
yields one place per physical core (the ST configuration).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import PlacesSyntaxError
from repro.topology.hwthread import Machine


@dataclass(frozen=True)
class Place:
    """An unordered set of CPUs a thread may run on."""

    cpus: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.cpus:
            raise PlacesSyntaxError("a place cannot be empty")
        if len(set(self.cpus)) != len(self.cpus):
            raise PlacesSyntaxError(f"duplicate cpus in place {self.cpus}")

    def __len__(self) -> int:
        return len(self.cpus)

    def __contains__(self, cpu: int) -> bool:
        return cpu in self.cpus


_ABSTRACT_RE = re.compile(r"^(?P<name>[a-z_]+)(\((?P<count>\d+)\))?$")


def _abstract_places(machine: Machine, name: str, count: int | None) -> list[Place]:
    if name == "threads":
        # topological order: core-major
        all_places = [
            Place((cpu,)) for core in machine.cores for cpu in core.cpu_ids
        ]
    elif name == "cores":
        all_places = [Place(tuple(core.cpu_ids)) for core in machine.cores]
    elif name == "sockets":
        all_places = [Place(tuple(s.cpu_ids)) for s in machine.sockets]
    elif name in ("numa_domains", "ll_caches"):
        # ll_caches coincides with NUMA domains on both modelled platforms
        all_places = [Place(tuple(d.cpu_ids)) for d in machine.numa_domains]
    else:
        raise PlacesSyntaxError(f"unknown abstract place name {name!r}")
    if count is not None:
        if count <= 0:
            raise PlacesSyntaxError(f"place count must be positive: {name}({count})")
        if count > len(all_places):
            raise PlacesSyntaxError(
                f"{name}({count}) exceeds available {len(all_places)} places"
            )
        return all_places[:count]
    return all_places


def _parse_res_list(body: str) -> list[int]:
    """Parse the inside of ``{...}``: numbers, ``a:len[:stride]``, ``a-b``."""
    cpus: list[int] = []
    for token in body.split(","):
        token = token.strip()
        if not token:
            raise PlacesSyntaxError(f"empty resource in place body {body!r}")
        if ":" in token:
            parts = token.split(":")
            if len(parts) not in (2, 3):
                raise PlacesSyntaxError(f"bad resource interval {token!r}")
            try:
                start = int(parts[0])
                length = int(parts[1])
                stride = int(parts[2]) if len(parts) == 3 else 1
            except ValueError as exc:
                raise PlacesSyntaxError(f"bad resource interval {token!r}") from exc
            if length <= 0:
                raise PlacesSyntaxError(f"non-positive length in {token!r}")
            cpus.extend(start + stride * k for k in range(length))
        elif "-" in token and not token.startswith("-"):
            lo_s, _, hi_s = token.partition("-")
            try:
                lo, hi = int(lo_s), int(hi_s)
            except ValueError as exc:
                raise PlacesSyntaxError(f"bad cpu range {token!r}") from exc
            if hi < lo:
                raise PlacesSyntaxError(f"descending cpu range {token!r}")
            cpus.extend(range(lo, hi + 1))
        else:
            try:
                cpus.append(int(token))
            except ValueError as exc:
                raise PlacesSyntaxError(f"bad cpu id {token!r}") from exc
    return cpus


def _split_top_level(text: str) -> list[str]:
    """Split on commas not inside braces."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise PlacesSyntaxError(f"unbalanced braces in {text!r}")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise PlacesSyntaxError(f"unbalanced braces in {text!r}")
    parts.append("".join(current))
    return parts


_PLACE_INTERVAL_RE = re.compile(
    r"^\{(?P<body>[^{}]*)\}(:(?P<len>\d+)(:(?P<stride>-?\d+))?)?$"
)


def parse_places(machine: Machine, text: str) -> list[Place]:
    """Parse an ``OMP_PLACES`` value against a machine.

    Raises
    ------
    PlacesSyntaxError
        On syntax errors or CPUs outside the machine.
    """
    text = text.strip()
    if not text:
        raise PlacesSyntaxError("OMP_PLACES is empty")

    m = _ABSTRACT_RE.match(text)
    if m and "{" not in text:
        count = int(m.group("count")) if m.group("count") else None
        places = _abstract_places(machine, m.group("name"), count)
    else:
        places = []
        for part in _split_top_level(text):
            part = part.strip()
            pm = _PLACE_INTERVAL_RE.match(part)
            if not pm:
                raise PlacesSyntaxError(f"cannot parse place {part!r}")
            base = _parse_res_list(pm.group("body"))
            if pm.group("len") is None:
                places.append(Place(tuple(base)))
            else:
                n_places = int(pm.group("len"))
                stride = int(pm.group("stride")) if pm.group("stride") else len(base)
                if n_places <= 0:
                    raise PlacesSyntaxError(f"non-positive place count in {part!r}")
                for k in range(n_places):
                    places.append(Place(tuple(c + k * stride for c in base)))

    for place in places:
        for cpu in place.cpus:
            if not 0 <= cpu < machine.n_cpus:
                raise PlacesSyntaxError(
                    f"place cpu {cpu} outside machine {machine.name} "
                    f"(0..{machine.n_cpus - 1})"
                )
    return places
