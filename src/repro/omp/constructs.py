"""Cost models for OpenMP synchronization constructs.

EPCC ``syncbench`` measures the overhead of PARALLEL, FOR, PARALLEL FOR,
BARRIER, SINGLE, CRITICAL, LOCK/UNLOCK, ORDERED, ATOMIC and REDUCTION.  The
models here give the *mean cost of one construct instance* as a function of
the team (size, NUMA/socket span, SMT sharing), plus a per-repetition
stochastic multiplier reflecting contention jitter.

Structure of the costs (all cache-line latencies in seconds):

* the team's *effective line latency* ``l_eff`` mixes local, cross-NUMA and
  cross-socket transfer latencies by the fraction of threads at each
  distance from the master — this produces the sharp cost increases the
  paper sees when a team first spans two sockets (Figure 1);
* barriers are ``2 * ceil(log2 n)`` rounds of line transfers (tree
  gather + release);
* fork wakes workers at a per-thread signalling cost (linear in ``n``,
  the dominant term at 254 threads);
* mutual-exclusion constructs serialize the team: each entry hands a lock
  line between cores, and handoff cost grows with the number of waiters;
* REDUCTION = PARALLEL + combine (one atomic per thread) + extra barrier —
  the most expensive construct, as the paper highlights.

When the team shares cores (SMT / the MT configuration), every latency is
multiplied by :attr:`SyncCostParams.smt_sync_factor` and the jitter sigma
gains :attr:`SyncCostParams.smt_jitter_boost` — spin-waiting on a sibling
hardware thread steals issue slots from the thread doing useful work,
which is the mechanism behind the CV blow-up in Figure 5e.

Vendor profiles (:mod:`repro.omp.vendor`) parameterize the model per
runtime implementation: the barrier transfer-round count comes from the
profile's barrier algorithm, fork/handoff constants are scaled by the
profile, and the wait policy decides whether waiters spin (paying the SMT
penalties above) or sleep (paying the scheduler wakeup path from
:func:`repro.sched.model.wakeup_path_cost` on every fork and barrier
release instead).  The default profile (GCC libgomp, active waiters)
reproduces the historical formulas exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.tracer import Tracer
from repro.omp.team import Team
from repro.omp.vendor import RuntimeProfile, default_profile
from repro.sched.model import wakeup_path_cost
from repro.sched.params import SchedParams
from repro.types import SyncConstruct
from repro.units import ns, us


@dataclass(frozen=True)
class SyncCostParams:
    """Platform constants for synchronization costs (seconds)."""

    line_local: float = ns(32.0)
    line_cross_numa: float = ns(75.0)
    line_cross_socket: float = ns(130.0)
    atomic_rmw: float = ns(18.0)
    lock_handoff_waiter_factor: float = 0.12
    fork_base: float = us(1.5)
    fork_per_thread: float = ns(60.0)
    join_base: float = us(0.5)
    barrier_base: float = us(0.4)
    single_election: float = ns(40.0)
    ordered_handoff: float = ns(90.0)
    smt_sync_factor: float = 1.3
    jitter_sigma_base: float = 0.04
    jitter_sigma_per_log2n: float = 0.015
    smt_jitter_boost: float = 0.20

    def __post_init__(self) -> None:
        if not self.line_local <= self.line_cross_numa <= self.line_cross_socket:
            raise ConfigurationError(
                "line latencies must be ordered local <= cross-numa <= cross-socket"
            )
        for name in (
            "line_local", "atomic_rmw", "fork_base", "fork_per_thread",
            "join_base", "barrier_base", "single_election", "ordered_handoff",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.smt_sync_factor < 1.0:
            raise ConfigurationError("smt_sync_factor must be >= 1")
        if self.jitter_sigma_base < 0 or self.jitter_sigma_per_log2n < 0:
            raise ConfigurationError("jitter sigmas must be non-negative")


@dataclass(frozen=True)
class ConstructProfile:
    """How a construct uses the team, per EPCC inner iteration.

    ``serialized`` — every thread executes the body one-at-a-time
    (critical/lock/ordered), so the body's delay is paid ``n`` times per
    logical iteration instead of once.
    ``has_fork`` — the construct opens/closes a parallel region on every
    iteration (parallel, parallel-for, reduction in EPCC's coding).
    """

    serialized: bool = False
    has_fork: bool = False
    has_barrier: bool = True


#: Characteristic wait between useful work that the sleep-vs-spin decision
#: is evaluated against (seconds): the EPCC suites re-enter a construct
#: about once per millisecond (``test_time`` cadence), so a passive waiter
#: with ``KMP_BLOCKTIME`` at or above this gap never actually sleeps — the
#: reason libomp's 200 ms default makes passive feel active in tight
#: benchmark loops — while smaller blocktimes sleep proportionally often.
TYPICAL_REGION_GAP = us(1000.0)


CONSTRUCT_PROFILES: dict[SyncConstruct, ConstructProfile] = {
    SyncConstruct.PARALLEL: ConstructProfile(has_fork=True),
    SyncConstruct.FOR: ConstructProfile(),
    SyncConstruct.PARALLEL_FOR: ConstructProfile(has_fork=True),
    SyncConstruct.BARRIER: ConstructProfile(),
    SyncConstruct.SINGLE: ConstructProfile(),
    SyncConstruct.CRITICAL: ConstructProfile(serialized=True, has_barrier=False),
    SyncConstruct.LOCK_UNLOCK: ConstructProfile(serialized=True, has_barrier=False),
    SyncConstruct.ORDERED: ConstructProfile(serialized=True, has_barrier=False),
    SyncConstruct.ATOMIC: ConstructProfile(serialized=True, has_barrier=False),
    SyncConstruct.REDUCTION: ConstructProfile(has_fork=True),
}


class SyncCostModel:
    """Mean construct costs + jitter for a given team.

    Parameters
    ----------
    params:
        Platform-calibrated latency constants.
    profile:
        Runtime-vendor profile (barrier algorithm, wait policy, constant
        scales); defaults to GCC libgomp with active waiters, which leaves
        every formula at its historical (seed-calibrated) value.
    sched_params:
        Scheduler constants for the wakeup path sleeping (passive) waiters
        pay; defaults to stock :class:`SchedParams`.
    """

    def __init__(
        self,
        params: SyncCostParams,
        profile: RuntimeProfile | None = None,
        sched_params: SchedParams | None = None,
    ):
        self.params = params
        self.profile = profile if profile is not None else default_profile()
        self.sched_params = sched_params if sched_params is not None else SchedParams()
        #: Fraction of waiters asleep when signalled (0 for active spinning;
        #: graded by the profile's spin-before-sleep threshold against the
        #: characteristic re-entry cadence of the benchmarks).
        self.sleep_share = self.profile.sleep_share(TYPICAL_REGION_GAP)
        #: Per-team memo of the pure cost formulas below.  Every input is
        #: frozen (params, profile, sched constants) and the team-derived
        #: facts depend only on (machine, cpus, bound), so costs are cached
        #: under that key — benchmark loops ask for the same team's fork /
        #: barrier cost once per repetition.
        self._cost_cache: dict[tuple, float] = {}

    # -- building blocks -----------------------------------------------------

    def _spin_smt_factor(self) -> float:
        """SMT latency factor, graded by how many waiters actually spin."""
        return 1.0 + (self.params.smt_sync_factor - 1.0) * (1.0 - self.sleep_share)

    def _cached(self, tag: str, team: Team, compute) -> float:
        """Memo lookup for a pure per-team cost formula (see __init__)."""
        key = (tag, team.machine.name, team.cpus, team.bound)
        value = self._cost_cache.get(key)
        if value is None:
            value = compute(team)
            self._cost_cache[key] = value
        return value

    def effective_line_latency(self, team: Team) -> float:
        """Distance-weighted cache-line transfer latency for the team."""
        return self._cached("l_eff", team, self._effective_line_latency)

    def _effective_line_latency(self, team: Team) -> float:
        p = self.params
        f_socket = team.outside_master_socket_fraction
        f_numa = max(0.0, team.outside_master_numa_fraction - f_socket)
        f_local = max(0.0, 1.0 - f_numa - f_socket)
        l_eff = (
            p.line_local * f_local
            + p.line_cross_numa * f_numa
            + p.line_cross_socket * f_socket
        )
        if team.uses_smt:
            # sleeping waiters don't issue spin loads from the sibling
            l_eff *= self._spin_smt_factor()
        return l_eff

    def barrier_cost(self, team: Team) -> float:
        """One full barrier (gather + release, per the vendor's algorithm)."""
        return self._cached("barrier", team, self._barrier_cost)

    def _barrier_cost(self, team: Team) -> float:
        n = team.n_threads
        if n == 1:
            return 0.0
        rounds = self.profile.barrier_span(n)
        cost = self.params.barrier_base + rounds * self.effective_line_latency(team)
        if self.sleep_share > 0.0:
            # the release wave must wake sleeping waiters level by level
            cost += self.sleep_share * wakeup_path_cost(
                self.sched_params, ceil(log2(n))
            )
        return cost

    def fork_cost(self, team: Team) -> float:
        """Open a parallel region: wake/signal each worker."""
        return self._cached("fork", team, self._fork_cost)

    def _fork_cost(self, team: Team) -> float:
        n = team.n_threads
        if n == 1:
            return 0.0
        cost = self.params.fork_base + self.params.fork_per_thread * (n - 1)
        cost *= self.profile.fork_scale
        if team.uses_smt:
            cost *= self._spin_smt_factor()
        if self.sleep_share > 0.0:
            # sleeping pool workers each need a full scheduler wakeup
            cost += self.sleep_share * wakeup_path_cost(self.sched_params, n - 1)
        return cost

    def join_cost(self, team: Team) -> float:
        return self.params.join_base + self.barrier_cost(team)

    def lock_handoff(self, team: Team) -> float:
        """Hand a contended lock line to the next waiter."""
        n = team.n_threads
        l_eff = self.effective_line_latency(team)
        waiters = max(0, n - 1)
        return (
            (l_eff + self.params.atomic_rmw)
            * (1.0 + self.params.lock_handoff_waiter_factor * waiters)
            * self.profile.handoff_scale
        )

    # -- per-construct mean cost ------------------------------------------------

    def construct_cost(self, construct: SyncConstruct, team: Team) -> float:
        """Mean overhead of ONE construct instance for this team.

        For serialized constructs this is the cost of one thread's entry;
        the benchmark layer multiplies by team size per logical iteration.
        """
        p = self.params
        n = team.n_threads
        if construct is SyncConstruct.PARALLEL:
            return self.fork_cost(team) + self.join_cost(team)
        if construct is SyncConstruct.FOR:
            # worksharing init (one line bounce) + the implicit barrier
            return self.effective_line_latency(team) + self.barrier_cost(team)
        if construct is SyncConstruct.PARALLEL_FOR:
            return self.fork_cost(team) + self.join_cost(team) + self.barrier_cost(team) * 0.25
        if construct is SyncConstruct.BARRIER:
            return self.barrier_cost(team)
        if construct is SyncConstruct.SINGLE:
            return p.single_election + self.effective_line_latency(team) + self.barrier_cost(team)
        if construct is SyncConstruct.CRITICAL:
            return self.lock_handoff(team)
        if construct is SyncConstruct.LOCK_UNLOCK:
            return self.lock_handoff(team) + p.atomic_rmw
        if construct is SyncConstruct.ORDERED:
            return p.ordered_handoff + self.effective_line_latency(team)
        if construct is SyncConstruct.ATOMIC:
            # contended RMW throughput: the line visits every competing core
            return p.atomic_rmw * (1.0 + 0.5 * max(0, n - 1) ** 0.7)
        if construct is SyncConstruct.REDUCTION:
            combine = n * p.atomic_rmw + self.effective_line_latency(team) * ceil(log2(max(2, n)))
            return self.fork_cost(team) + self.join_cost(team) + combine + self.barrier_cost(team)
        raise ConfigurationError(f"unknown construct {construct!r}")

    # -- observability ------------------------------------------------------------

    def barrier_trace_args(self, team: Team) -> dict:
        """Explanatory args for barrier/join spans: how the cost decomposes.

        Names the vendor's barrier algorithm, its serialized line-transfer
        round count for this team, the team's effective line latency and
        the sleeping-waiter share — the model facts a trace reader needs
        to see *why* this barrier costs what it does.
        """
        n = team.n_threads
        return {
            "algorithm": self.profile.barrier_algorithm.value,
            "rounds": self.profile.barrier_span(n),
            "l_eff_ns": round(self.effective_line_latency(team) * 1e9, 3),
            "sleep_share": round(self.sleep_share, 4),
            "n_threads": n,
        }

    def trace_barrier(
        self, tracer: Tracer, tid: int, t0: float, team: Team,
        name: str = "barrier",
    ) -> None:
        """Emit one barrier instance as a span with per-round sub-spans.

        The top span covers the full :meth:`barrier_cost` window and
        carries :meth:`barrier_trace_args`; inside it, each of the
        vendor algorithm's line-transfer rounds gets a ``barrier.gather``
        / ``barrier.release`` sub-span of one effective line latency —
        the model's own cost decomposition, laid out on the timeline.  A
        cold annotation helper (one call per traced construct instance),
        guarded on entry.
        """
        if not tracer.enabled:
            return
        n = team.n_threads
        cost = self.barrier_cost(team)
        tracer.span(
            tid, name, t0, t0 + cost, cat="omp",
            args=self.barrier_trace_args(team),
        )
        if n <= 1:
            return
        rounds = int(self.profile.barrier_span(n))
        l_eff = self.effective_line_latency(team)
        t = t0 + self.params.barrier_base
        for r in range(rounds):
            phase = "gather" if 2 * r < rounds else "release"
            tracer.span(
                tid, f"barrier.{phase}", t, t + l_eff, cat="omp",
                args={"round": r},
            )
            t += l_eff

    # -- stochastic per-repetition multiplier -------------------------------------

    def jitter_sigma(self, team: Team) -> float:
        p = self.params
        sigma = p.jitter_sigma_base + p.jitter_sigma_per_log2n * log2(max(2, team.n_threads))
        sigma *= self.profile.jitter_scale
        if team.uses_smt:
            # only spinning waiters perturb their sibling's issue stream
            sigma += p.smt_jitter_boost * (1.0 - self.sleep_share)
        return sigma

    def sample_multiplier(self, team: Team, rng: np.random.Generator) -> float:
        """Log-normal (mean ≈ 1) contention jitter for one repetition."""
        sigma = self.jitter_sigma(team)
        return float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
