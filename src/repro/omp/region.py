"""Parallel-region execution.

:class:`RegionExecutor` computes how long one barrier-terminated parallel
region takes on the simulated node, combining:

* per-thread **work** (seconds at the platform's calibration frequency,
  rescaled through each CPU's live frequency trace),
* **SMT sharing** between teammates (MT configuration) — shared cores
  retire each thread's work at :attr:`RegionParams.smt_efficiency` of a
  full core,
* **OS noise** — preemption intervals on each thread's CPU, aggregated
  according to the region's :class:`NoiseMode`:

  - ``MAX``: one barrier at the end; only the slowest thread's noise
    matters (static loops, stream kernels);
  - ``SYNC_SUM``: the region body synchronizes continuously (EPCC
    syncbench's inner loop) so every preemption anywhere lands on the
    critical path, scaled by ``sync_noise_kappa``;
  - ``BALANCED``: dynamic scheduling redistributes work around a stalled
    thread; the team absorbs noise at ``total / n``;

* **sibling pressure** — OS work on an SMT sibling slows the thread by
  :attr:`RegionParams.smt_noise_penalty` for the overlap duration,
* **scheduler artifacts** for unbound teams — per-thread wake delays and
  stacking episodes (time-sharing a CPU until the balancer resolves it),
* a **queue-serialization floor** for dynamic/guided loops, and
* a terminating **barrier cost**.

The computation is a two-pass fixed point: duration determines how much
noise falls in the window, which extends the duration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.freq.dvfs import FrequencyPlan
from repro.omp.team import Team
from repro.osnoise.model import NoiseRealization
from repro.sched.balancer import StackingEpisode


class NoiseMode(enum.Enum):
    """How OS preemptions aggregate onto the region's critical path."""

    MAX = "max"
    SYNC_SUM = "sync_sum"
    BALANCED = "balanced"


@dataclass(frozen=True)
class RegionParams:
    """Execution-model constants.

    ``smt_efficiency`` is the *default* per-thread throughput factor when
    two teammates share a core; it is workload-dependent (a throughput-
    bound kernel sees ~0.6, the latency-bound EPCC delay loop ~0.95+), so
    benchmarks may override it per region via
    :meth:`RegionExecutor.execute`.
    """

    smt_efficiency: float = 0.62
    smt_noise_penalty: float = 0.35
    sync_noise_kappa: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.smt_efficiency <= 1.0:
            raise ConfigurationError("smt_efficiency outside (0, 1]")
        if not 0.0 <= self.smt_noise_penalty <= 1.0:
            raise ConfigurationError("smt_noise_penalty outside [0, 1]")
        if not 0.0 <= self.sync_noise_kappa <= 1.0:
            raise ConfigurationError("sync_noise_kappa outside [0, 1]")


@dataclass(frozen=True)
class RegionResult:
    """Outcome of one region execution."""

    start: float
    end: float
    per_thread_end: np.ndarray = field(compare=False)
    noise_seconds: float = 0.0
    stacking_seconds: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class RegionExecutor:
    """Executes regions against one run's frequency plan and noise."""

    def __init__(
        self,
        freq_plan: FrequencyPlan,
        noise: NoiseRealization,
        params: RegionParams | None = None,
    ):
        self.freq_plan = freq_plan
        self.noise = noise
        self.params = params if params is not None else RegionParams()

    # -- helpers -------------------------------------------------------------

    def _compute_duration(self, cpu: int, start: float, work_seconds: float) -> float:
        """Rescale nominal work through the CPU's frequency trace."""
        if work_seconds <= 0:
            return 0.0
        cycles = work_seconds * self.freq_plan.calibration_hz
        return self.freq_plan.duration_for_cycles(cpu, start, cycles)

    @staticmethod
    def _stacking_extra(
        episodes: tuple[StackingEpisode, ...], thread: int, t0: float, t1: float
    ) -> float:
        """Extra wall time thread *thread* loses to time-sharing in [t0, t1)."""
        extra = 0.0
        for ep in episodes:
            if ep.thread != thread:
                continue
            overlap = min(t1, ep.end) - max(t0, ep.start)
            if overlap > 0:
                extra += overlap * (ep.slowdown_factor() - 1.0)
        return extra

    # -- main entry point --------------------------------------------------------

    def execute(
        self,
        t_start: float,
        team: Team,
        work_seconds: np.ndarray,
        *,
        noise_mode: NoiseMode = NoiseMode.MAX,
        sync_overhead: float = 0.0,
        queue_floor: float = 0.0,
        wake_delays: np.ndarray | None = None,
        stacking_episodes: tuple[StackingEpisode, ...] = (),
        barrier_cost: float = 0.0,
        freq_sensitive: bool = True,
        smt_efficiency: float | None = None,
    ) -> RegionResult:
        """Execute one parallel region starting at *t_start*.

        Parameters
        ----------
        work_seconds:
            Per-thread loop-body work at calibration frequency.
        sync_overhead:
            Critical-path synchronization time (construct costs x
            iterations), also frequency-rescaled.
        queue_floor:
            Makespan lower bound from the dynamic-schedule queue.
        barrier_cost:
            Terminating barrier (added after the slowest thread).
        freq_sensitive:
            ``False`` for memory-bound work whose duration does not track
            core frequency (BabelStream); per-thread work is then taken as
            literal wall seconds and teammate-SMT sharing is assumed to be
            already folded in by the caller's bandwidth model.
        """
        n = team.n_threads
        work_seconds = np.asarray(work_seconds, dtype=np.float64)
        if work_seconds.shape != (n,):
            raise SimulationError(
                f"work array shape {work_seconds.shape} != team size {n}"
            )
        if wake_delays is None:
            wake_delays = np.zeros(n)
        p = self.params

        starts = t_start + wake_delays
        if freq_sensitive:
            # SMT sharing between teammates: shared cores retire work slower
            eff_value = smt_efficiency if smt_efficiency is not None else p.smt_efficiency
            if not 0.0 < eff_value <= 1.0:
                raise ConfigurationError(f"smt_efficiency {eff_value} outside (0, 1]")
            eff = np.where(team.smt_shared, eff_value, 1.0)
            adj_work = work_seconds / eff
            # pass 1: frequency-rescaled compute, no noise
            durations = np.asarray(
                [
                    self._compute_duration(cpu, s, w)
                    for cpu, s, w in zip(team.cpus, starts, adj_work)
                ]
            )
            sync_scaled = 0.0
            if sync_overhead > 0.0:
                sync_scaled = self._compute_duration(
                    team.master_cpu, t_start, sync_overhead
                )
        else:
            durations = work_seconds.copy()
            sync_scaled = sync_overhead

        # window estimate for noise accounting (slight margin for pass 2)
        base_end = float(np.max(starts + durations)) + sync_scaled
        window_end = base_end + 0.25 * (base_end - t_start) + 1e-6

        # pass 2: noise + stacking within the window
        stolen = np.zeros(n)
        sibling = np.zeros(n)
        stacking = np.zeros(n)
        for i, cpu in enumerate(team.cpus):
            t0 = float(starts[i])
            stolen[i] = self.noise.stolen_on(cpu).overlap(t0, window_end)
            sib = self.noise.sibling_pressure_on(cpu)
            if not sib.is_empty() and not team.smt_shared[i]:
                # pressure only matters when the sibling is otherwise free
                sibling[i] = sib.overlap(t0, window_end) * p.smt_noise_penalty
            stacking[i] = self._stacking_extra(stacking_episodes, i, t0, window_end)

        per_thread_delay = sibling + stacking
        if noise_mode is NoiseMode.MAX:
            per_thread_end = starts + durations + stolen + per_thread_delay
            arrival = float(np.max(per_thread_end))
            noise_seconds = float(np.max(stolen + sibling))
        elif noise_mode is NoiseMode.SYNC_SUM:
            shared_noise = p.sync_noise_kappa * float(np.sum(stolen))
            per_thread_end = starts + durations + per_thread_delay + shared_noise
            arrival = float(np.max(per_thread_end))
            noise_seconds = shared_noise + float(np.sum(sibling))
        elif noise_mode is NoiseMode.BALANCED:
            spread = (float(np.sum(stolen)) + float(np.sum(per_thread_delay))) / n
            per_thread_end = starts + durations + spread
            arrival = float(np.max(per_thread_end))
            noise_seconds = spread
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown noise mode {noise_mode!r}")

        arrival += sync_scaled
        arrival = max(arrival, t_start + queue_floor)
        end = arrival + barrier_cost
        return RegionResult(
            start=t_start,
            end=end,
            per_thread_end=per_thread_end,
            noise_seconds=noise_seconds,
            stacking_seconds=float(np.sum(stacking)),
        )
