"""The OpenMP runtime facade.

:class:`OpenMPRuntime` resolves an :class:`~repro.omp.env.OMPEnvironment`
against a platform into concrete thread teams and produces per-run
execution contexts (:class:`RunContext`) that bundle everything a benchmark
repetition needs: the run's frequency plan, its noise realization, the
region executor, and the synchronization cost model.

This module deliberately does not import :mod:`repro.platform`; it accepts
any object exposing the platform attributes (duck-typed) so the dependency
graph stays acyclic (platform -> omp -> substrates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BindingError, ConfigurationError
from repro.freq.dvfs import FrequencyModel, FrequencyPlan
from repro.freq.governor import make_governor
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.omp.constructs import SyncCostModel
from repro.omp.env import OMPEnvironment
from repro.omp.places import parse_places
from repro.omp.proc_bind import assign_cpus, bind_threads
from repro.omp.region import RegionExecutor, RegionParams
from repro.omp.tasking.params import TaskCostModel, TaskCostParams
from repro.omp.team import Team
from repro.omp.vendor import RuntimeProfile
from repro.osnoise.model import NoiseModel, NoiseRealization
from repro.rng import RngFactory
from repro.sched.model import ForkOutcome, SchedulerModel, trace_fork

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform import Platform


@dataclass
class RunContext:
    """Everything one run (one process launch) of a benchmark needs.

    The context owns a time cursor; benchmarks execute repetitions
    sequentially along the run's realized noise/frequency timeline, which
    is what produces natural within-run variability.
    """

    runtime: "OpenMPRuntime"
    run_index: int
    team: Team
    fork: ForkOutcome
    freq_plan: FrequencyPlan
    noise: NoiseRealization
    executor: RegionExecutor
    sync_cost: SyncCostModel
    rng: RngFactory
    t: float = 0.0
    #: Observability sink; benchmarks read it to emit spans along the run
    #: timeline (docs/observability.md).  Defaults to the no-op tracer.
    tracer: Tracer = NULL_TRACER

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ConfigurationError(f"cannot advance cursor by {dt}")
        self.t += dt

    def stream(self, *path) -> np.random.Generator:
        """Run-scoped RNG stream."""
        return self.rng.stream(*path)

    @property
    def machine(self):
        return self.runtime.machine

    def refork_unbound(self, rng: np.random.Generator) -> None:
        """Re-place an unbound team (called per outer repetition).

        The run's noise realization and frequency plan were generated
        machine-wide for unbound runs (see :meth:`OpenMPRuntime.start_run`),
        so the re-placed CPUs carry the same noise/frequency processes as
        the original placement — a reforked team never runs noise-free.
        """
        if self.team.bound:
            return
        outcome = self.runtime.sched_model.fork_unbound(
            self.team.n_threads, self.team.master_cpu, self.t, rng
        )
        self.fork = outcome
        self.team = self.team.with_cpus(list(outcome.cpus))
        if self.tracer.enabled:
            self.tracer.instant(
                0, "refork", self.t, cat="sched",
                args={"cpus": [int(c) for c in outcome.cpus]},
            )
            trace_fork(self.tracer, outcome, self.t)


class OpenMPRuntime:
    """Resolves OMP settings into teams and run contexts for one platform.

    *profile* selects the runtime vendor (:mod:`repro.omp.vendor`); it
    defaults to the platform's preset.  ``OMP_WAIT_POLICY`` /
    ``KMP_BLOCKTIME`` settings in *env* override the profile's wait policy.
    """

    def __init__(
        self,
        platform: "Platform",
        env: OMPEnvironment,
        profile: RuntimeProfile | None = None,
    ):
        self.platform = platform
        self.env = env
        self.machine = platform.machine
        base_profile = profile if profile is not None else platform.runtime_profile
        self.profile = base_profile.with_env(env)
        self.freq_model = FrequencyModel(platform.machine, platform.freq_spec)
        self.noise_model = NoiseModel(platform.machine, platform.noise_profile.sources)
        self.sched_model = SchedulerModel(platform.machine, platform.sched_params)
        self.sync_cost = SyncCostModel(
            platform.sync_params, self.profile, platform.sched_params
        )
        self.task_cost = TaskCostModel(
            getattr(platform, "task_params", None) or TaskCostParams(),
            self.sync_cost,
        )
        self.governor = make_governor(platform.default_governor)
        if env.num_threads > self.machine.n_cpus:
            raise ConfigurationError(
                f"{env.num_threads} threads exceed {self.machine.n_cpus} CPUs "
                f"on {self.machine.name}"
            )

    # -- team resolution ---------------------------------------------------------

    def resolve_bound_team(self) -> Team:
        """Apply OMP_PLACES + OMP_PROC_BIND to get the pinned team."""
        env = self.env
        if not env.bound:
            raise BindingError("resolve_bound_team with OMP_PROC_BIND=false")
        places = parse_places(self.machine, env.places or "cores")
        thread_places = bind_threads(env.num_threads, len(places), env.proc_bind)
        cpus = assign_cpus(places, thread_places)
        return Team(self.machine, tuple(cpus), bound=True)

    def resolve_unbound_team(self, rng: np.random.Generator) -> tuple[Team, ForkOutcome]:
        """Sample an OS placement for an unbound team (master on CPU 0)."""
        outcome = self.sched_model.fork_unbound(
            self.env.num_threads, master_cpu=0, t_start=0.0, rng=rng
        )
        return Team(self.machine, outcome.cpus, bound=False), outcome

    # -- run contexts ---------------------------------------------------------------

    def _trace_run_setup(
        self,
        tracer: Tracer,
        team: Team,
        fork: ForkOutcome,
        freq_plan: FrequencyPlan,
    ) -> None:
        """Emit the run's setup picture: thread tracks, fork placement,
        scheduler wakeups, and the frequency plan's dips.  Cold path —
        called once per traced run, guarded on entry."""
        if not tracer.enabled:
            return
        for i, cpu in enumerate(team.cpus):
            tracer.thread_name(i, f"thread {i} (cpu {int(cpu)})")
        tracer.instant(
            0, "fork.place", 0.0, cat="sched",
            args={"cpus": [int(c) for c in team.cpus], "bound": self.env.bound},
        )
        trace_fork(tracer, fork, 0.0)
        for dip in freq_plan.dips:
            tracer.instant(
                0, "freq.dip", dip.start, cat="freq",
                args={
                    "socket": dip.socket_id,
                    "depth": round(dip.depth, 4),
                    "duration_us": round(dip.duration * 1e6, 3),
                },
            )

    def start_run(
        self,
        run_index: int,
        rng_factory: RngFactory,
        horizon: float,
        extra_busy_cpus: tuple[int, ...] = (),
        tracer: Tracer = NULL_TRACER,
    ) -> RunContext:
        """Realize one run: placement, frequency plan, noise, executor.

        *horizon* should generously cover the run's expected duration; the
        frequency traces extend beyond it (last value holds) and noise
        beyond it is absent, so prefer a 1.5-2x margin.

        *extra_busy_cpus* marks CPUs occupied by non-benchmark activity the
        experiment controls (e.g. the frequency logger's core).
        """
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        run_rng = rng_factory.child("run", run_index)
        if self.env.bound:
            team = self.resolve_bound_team()
            fork = self.sched_model.fork_bound(
                list(team.cpus), run_rng.stream("fork")
            )
        else:
            team, fork = self.resolve_unbound_team(run_rng.stream("placement"))

        busy = list(dict.fromkeys(list(team.cpus) + list(extra_busy_cpus)))
        # Bound teams: the frequency plan's boost/dip triggers follow the
        # *team* (the logger on a spare core must not make a one-NUMA team
        # look cross-NUMA); noise placement sees every busy CPU.
        # Unbound teams migrate on every refork, so their noise and
        # frequency-trigger processes are realized machine-wide — otherwise
        # a re-placed team lands on CPUs with no noise events and dip/derate
        # processes anchored to the initial placement.
        unbound = not self.env.bound
        freq_plan = self.freq_model.plan(
            0.0, horizon, list(team.cpus), self.governor, run_rng.stream("freq"),
            machine_wide=unbound,
        )
        noise_busy = list(range(self.machine.n_cpus)) if unbound else busy
        noise = self.noise_model.realize(
            0.0, horizon, noise_busy, run_rng.stream("noise")
        )
        executor = RegionExecutor(freq_plan, noise, self.platform.region_params)
        self._trace_run_setup(tracer, team, fork, freq_plan)
        return RunContext(
            runtime=self,
            run_index=run_index,
            team=team,
            fork=fork,
            freq_plan=freq_plan,
            noise=noise,
            executor=executor,
            sync_cost=self.sync_cost,
            rng=run_rng,
            t=0.0,
            tracer=tracer,
        )
