"""Worksharing-loop schedule models.

Produces, for a loop of ``total_iters`` iterations over ``n`` threads:

* the exact chunk sequence a libgomp-style runtime would generate
  (:func:`chunk_sequence` — exported because tests and ablations verify it
  partitions the iteration space), and
* a :class:`LoopPlan` with per-thread work and overhead, plus the
  central-queue serialization bound for dynamic/guided schedules.

Cost model
----------
Dynamic and guided schedules serve chunks from one shared counter.  Each
dequeue costs the *requesting thread* a latency ``c_lat(n)`` (an atomic RMW
on a contended cache line, growing ~sqrt(n) under non-saturated load), and
costs the *queue* an occupancy ``c_thru(n)`` (the serialized cache-line
hand-off).  The loop's makespan is then

``max( per-thread compute + dequeue latencies,  n_chunks * c_thru )``

— the second term is the queue-throughput bound that dominates schedbench's
``dynamic_1`` at 254 threads on Dardel.  Static schedules pay neither; only
a per-chunk index computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2, sqrt

import numpy as np

from repro.errors import ScheduleError
from repro.types import ScheduleKind
from repro.units import ns


@dataclass(frozen=True)
class ScheduleCostParams:
    """Platform constants of the loop-scheduling cost model (seconds).

    ``dequeue_latency(n) = lat_base + lat_sqrt * sqrt(n)``
    ``queue_service(n)   = thru_base + thru_log * log2(n)``
    ``static_chunk_cost`` — per-chunk index arithmetic for static,c.
    """

    lat_base: float = ns(70.0)
    lat_sqrt: float = ns(34.0)
    thru_base: float = ns(25.0)
    thru_log: float = ns(5.0)
    static_chunk_cost: float = ns(4.0)

    def __post_init__(self) -> None:
        for f in (self.lat_base, self.lat_sqrt, self.thru_base, self.thru_log,
                  self.static_chunk_cost):
            if f < 0:
                raise ScheduleError("schedule cost constants must be non-negative")

    def dequeue_latency(self, n_threads: int) -> float:
        return self.lat_base + self.lat_sqrt * sqrt(max(1, n_threads))

    def queue_service(self, n_threads: int) -> float:
        return self.thru_base + self.thru_log * log2(max(2, n_threads))


@dataclass(frozen=True)
class LoopPlan:
    """Execution plan of one worksharing loop.

    All times are *seconds at the platform's calibration frequency*; the
    region executor rescales them with the live frequency trace.

    Attributes
    ----------
    per_thread_work:
        Pure loop-body time per thread (max-balanced partition).
    per_thread_overhead:
        Dequeue/bookkeeping time paid by each thread.
    queue_serialization:
        Lower bound on the loop makespan from the shared chunk queue
        (0 for static schedules).
    imbalance_tail:
        Expected straggle of the last chunk (half a chunk of work for
        dynamic-style schedules, up to a full block for static).
    n_chunks:
        Total chunks dispensed.
    """

    kind: ScheduleKind
    n_threads: int
    per_thread_work: np.ndarray
    per_thread_overhead: np.ndarray
    queue_serialization: float
    imbalance_tail: float
    n_chunks: int

    @property
    def makespan_estimate(self) -> float:
        """Noise-free, frequency-nominal makespan estimate."""
        compute = float(np.max(self.per_thread_work + self.per_thread_overhead))
        return max(compute, self.queue_serialization) + self.imbalance_tail


def chunk_sequence(
    kind: ScheduleKind, total_iters: int, n_threads: int, chunk: int | None
) -> list[int]:
    """The sizes of the chunks a runtime dispenses, in dispatch order.

    * static (no chunk): ``n_threads`` contiguous blocks, sizes differing
      by at most one;
    * static,c / dynamic,c: constant ``c`` (last chunk truncated);
    * guided,c: ``max(remaining / n_threads, c)``, last chunk truncated.
    """
    if total_iters <= 0:
        raise ScheduleError(f"loop needs iterations, got {total_iters}")
    if n_threads <= 0:
        raise ScheduleError(f"need threads, got {n_threads}")
    if chunk is not None and chunk <= 0:
        raise ScheduleError(f"chunk must be positive, got {chunk}")

    if kind is ScheduleKind.STATIC and chunk is None:
        base = total_iters // n_threads
        extra = total_iters % n_threads
        return [base + (1 if i < extra else 0) for i in range(n_threads) if base or i < extra]

    if kind in (ScheduleKind.STATIC, ScheduleKind.DYNAMIC):
        c = chunk if chunk is not None else 1
        full, rem = divmod(total_iters, c)
        return [c] * full + ([rem] if rem else [])

    if kind is ScheduleKind.GUIDED:
        c_min = chunk if chunk is not None else 1
        chunks: list[int] = []
        remaining = total_iters
        while remaining > 0:
            k = max(ceil(remaining / n_threads), c_min)
            k = min(k, remaining)
            chunks.append(k)
            remaining -= k
        return chunks

    raise ScheduleError(f"unsupported schedule kind {kind!r}")


def plan_loop(
    kind: ScheduleKind,
    total_iters: int,
    n_threads: int,
    chunk: int | None,
    iter_work_seconds: float,
    params: ScheduleCostParams,
    latency_factor: float = 1.0,
) -> LoopPlan:
    """Build the :class:`LoopPlan` for one worksharing loop.

    *iter_work_seconds* is the loop-body duration of a single iteration at
    the calibration frequency (EPCC's ``delaytime``).

    *latency_factor* scales the shared-queue costs for topology spread —
    a team spanning two sockets bounces the chunk counter's cache line
    over the interconnect (callers pass ``1 + k * cross_socket_fraction``).
    """
    if latency_factor < 1.0:
        raise ScheduleError(f"latency_factor {latency_factor} below 1")
    if iter_work_seconds < 0:
        raise ScheduleError(f"negative iteration work {iter_work_seconds}")
    if total_iters <= 0:
        raise ScheduleError(f"loop needs iterations, got {total_iters}")
    if n_threads <= 0:
        raise ScheduleError(f"need threads, got {n_threads}")
    if chunk is not None and chunk <= 0:
        raise ScheduleError(f"chunk must be positive, got {chunk}")

    # chunk counts computed arithmetically — a full-scale dynamic_1 loop
    # dispenses ~2 million chunks per repetition, far too many to list
    if kind is ScheduleKind.STATIC:
        per_thread_iters = np.zeros(n_threads)
        per_thread_chunks = np.zeros(n_threads)
        if chunk is None:
            base, extra = divmod(total_iters, n_threads)
            per_thread_iters[:] = base
            per_thread_iters[:extra] += 1
            per_thread_chunks[:] = (per_thread_iters > 0).astype(float)
            n_chunks = int(np.count_nonzero(per_thread_iters))
        else:
            n_chunks = ceil(total_iters / chunk)
            q, r = divmod(n_chunks, n_threads)
            per_thread_chunks[:] = q
            per_thread_chunks[:r] += 1
            per_thread_iters = per_thread_chunks * chunk
            # last chunk may be short; it belongs to thread (n_chunks-1) % n
            short_by = n_chunks * chunk - total_iters
            per_thread_iters[(n_chunks - 1) % n_threads] -= short_by
        work = per_thread_iters * iter_work_seconds
        overhead = per_thread_chunks * params.static_chunk_cost
        return LoopPlan(
            kind=kind,
            n_threads=n_threads,
            per_thread_work=work,
            per_thread_overhead=overhead,
            queue_serialization=0.0,
            imbalance_tail=0.0,  # partition is exact; tail differences in `work`
            n_chunks=n_chunks,
        )

    # dynamic / guided: chunks drawn from a shared queue, ~evenly many each
    if kind is ScheduleKind.DYNAMIC:
        c = chunk if chunk is not None else 1
        n_chunks = ceil(total_iters / c)
    else:
        n_chunks = len(chunk_sequence(kind, total_iters, n_threads, chunk))
    c_lat = params.dequeue_latency(n_threads) * latency_factor
    c_thru = params.queue_service(n_threads) * latency_factor
    total_work = total_iters * iter_work_seconds
    work = np.full(n_threads, total_work / n_threads)
    dequeues_per_thread = n_chunks / n_threads
    overhead = np.full(n_threads, dequeues_per_thread * c_lat)
    queue_serialization = n_chunks * c_thru
    mean_chunk = total_iters / n_chunks
    imbalance = 0.5 * mean_chunk * iter_work_seconds
    return LoopPlan(
        kind=kind,
        n_threads=n_threads,
        per_thread_work=work,
        per_thread_overhead=overhead,
        queue_serialization=queue_serialization,
        imbalance_tail=imbalance,
        n_chunks=n_chunks,
    )
