"""``OMP_PROC_BIND`` binding algorithms.

Given a place list and a team size, produce the place of every thread
(:func:`bind_threads`) and then a concrete CPU within that place
(:func:`assign_cpus`), following the OpenMP 5.x affinity semantics:

* ``close``  — threads occupy consecutive places starting from the
  master's place; with more threads than places, threads are divided into
  contiguous groups, one group per place.
* ``spread`` — the place list is partitioned into ``T`` roughly equal
  subpartitions and thread *i* is bound to the first place of partition
  *i* (sparse distribution).
* ``master`` — every thread binds to the master's place.
* ``true``   — implementation-defined; we follow libgomp and treat it as
  ``close``.
"""

from __future__ import annotations

from repro.errors import BindingError
from repro.omp.places import Place
from repro.types import ProcBind


def bind_threads(
    n_threads: int,
    n_places: int,
    policy: ProcBind,
    master_place: int = 0,
) -> list[int]:
    """Place index for each thread (thread 0 is the master).

    >>> bind_threads(4, 8, ProcBind.CLOSE)
    [0, 1, 2, 3]
    >>> bind_threads(4, 8, ProcBind.SPREAD)
    [0, 2, 4, 6]
    >>> bind_threads(4, 2, ProcBind.CLOSE)
    [0, 0, 1, 1]
    """
    if n_threads <= 0:
        raise BindingError(f"need at least one thread, got {n_threads}")
    if n_places <= 0:
        raise BindingError(f"need at least one place, got {n_places}")
    if not 0 <= master_place < n_places:
        raise BindingError(f"master place {master_place} outside 0..{n_places - 1}")
    if policy is ProcBind.FALSE:
        raise BindingError("bind_threads called with OMP_PROC_BIND=false")

    if policy is ProcBind.MASTER:
        return [master_place] * n_threads

    if policy in (ProcBind.CLOSE, ProcBind.TRUE):
        if n_threads <= n_places:
            return [(master_place + i) % n_places for i in range(n_threads)]
        # T > P: contiguous thread groups, group j -> place (master + j) % P
        return [
            (master_place + (i * n_places) // n_threads) % n_places
            for i in range(n_threads)
        ]

    if policy is ProcBind.SPREAD:
        if n_threads <= n_places:
            # subpartition i covers places [floor(i*P/T), floor((i+1)*P/T))
            return [
                (master_place + (i * n_places) // n_threads) % n_places
                for i in range(n_threads)
            ]
        return [
            (master_place + (i * n_places) // n_threads) % n_places
            for i in range(n_threads)
        ]

    raise BindingError(f"unsupported policy {policy!r}")


def assign_cpus(
    places: list[Place],
    thread_places: list[int],
) -> list[int]:
    """Concrete CPU per thread.

    Threads sharing a place receive distinct CPUs of that place in order,
    wrapping around when the place is oversubscribed (legal in OpenMP —
    threads then time-share the place's CPUs).
    """
    if not places:
        raise BindingError("empty place list")
    next_slot: dict[int, int] = {}
    cpus: list[int] = []
    for place_idx in thread_places:
        if not 0 <= place_idx < len(places):
            raise BindingError(f"place index {place_idx} outside place list")
        place = places[place_idx]
        slot = next_slot.get(place_idx, 0)
        cpus.append(place.cpus[slot % len(place.cpus)])
        next_slot[place_idx] = slot + 1
    return cpus
