"""Modelled OpenMP runtime.

Implements the runtime mechanisms the paper's benchmarks exercise:

* :mod:`repro.omp.env` / :mod:`repro.omp.places` /
  :mod:`repro.omp.proc_bind` — the ``OMP_NUM_THREADS`` / ``OMP_PLACES`` /
  ``OMP_PROC_BIND`` machinery (parsing, place construction, the
  close/spread/master binding algorithms);
* :mod:`repro.omp.team` — thread teams and their CPU assignments;
* :mod:`repro.omp.schedule` — worksharing-loop schedules
  (static/dynamic/guided with chunk sizes) including the central-queue
  contention model behind schedbench's ``dynamic_1`` numbers;
* :mod:`repro.omp.vendor` — runtime-vendor profiles (GCC libgomp vs LLVM
  libomp): barrier algorithms, wait policies, per-vendor constant scales;
* :mod:`repro.omp.constructs` — cost models for every synchronization
  construct syncbench measures, parameterized by the vendor profile;
* :mod:`repro.omp.region` — the parallel-region executor combining work,
  frequency traces, OS noise, SMT sharing and scheduler behaviour;
* :mod:`repro.omp.tasking` — the explicit-tasking runtime: per-thread
  deques, the work-stealing scheduler, ``taskloop``/recursive workload
  generators and their cost model;
* :mod:`repro.omp.runtime` — the user-facing facade.
"""

from repro.omp.env import OMPEnvironment
from repro.omp.places import Place, parse_places
from repro.omp.vendor import (
    BarrierAlgorithm,
    RuntimeProfile,
    WaitPolicy,
    available_runtimes,
    default_profile,
    get_runtime_profile,
)
from repro.omp.proc_bind import assign_cpus, bind_threads
from repro.omp.team import Team
from repro.omp.schedule import LoopPlan, ScheduleCostParams, plan_loop
from repro.omp.constructs import ConstructProfile, SyncCostModel, SyncCostParams
from repro.omp.region import NoiseMode, RegionExecutor, RegionParams, RegionResult
from repro.omp.tasking import (
    Task,
    TaskCostModel,
    TaskCostParams,
    TaskDeque,
    TaskRunStats,
    WorkStealingScheduler,
)
from repro.omp.runtime import OpenMPRuntime

__all__ = [
    "OMPEnvironment",
    "Place",
    "parse_places",
    "BarrierAlgorithm",
    "RuntimeProfile",
    "WaitPolicy",
    "available_runtimes",
    "default_profile",
    "get_runtime_profile",
    "bind_threads",
    "assign_cpus",
    "Team",
    "LoopPlan",
    "ScheduleCostParams",
    "plan_loop",
    "SyncCostModel",
    "SyncCostParams",
    "ConstructProfile",
    "NoiseMode",
    "RegionExecutor",
    "RegionParams",
    "RegionResult",
    "Task",
    "TaskDeque",
    "TaskCostModel",
    "TaskCostParams",
    "TaskRunStats",
    "WorkStealingScheduler",
    "OpenMPRuntime",
]
