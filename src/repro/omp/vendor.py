"""Runtime-vendor profiles: what makes libgomp behave unlike libomp.

The paper characterizes variability *of the OpenMP runtime*, and a large
part of a runtime's fingerprint is implementation policy rather than
hardware: which barrier algorithm it runs, whether waiters spin or sleep,
and how aggressively the fork path signals workers.  A
:class:`RuntimeProfile` captures those choices so the same platform can be
simulated under different runtimes (``--runtime gnu|llvm``) and under
different wait policies (``OMP_WAIT_POLICY``, ``KMP_BLOCKTIME``).

Modelled axes
-------------

*Barrier algorithm* — the number of serialized cache-line transfer rounds
one full barrier costs (:meth:`RuntimeProfile.barrier_span`):

``gather_release``
    libgomp's centralized gather + release broadcast, modelled as
    ``2 * ceil(log2 n)`` transfer rounds — the seed model's calibrated
    shape, kept byte-identical for the default profile.
``hyper``
    libomp's hypercube-embedded tree barrier with configurable branching
    factor (``KMP_*_BARRIER_PATTERN=hyper``): ``ceil(log_b n)`` rounds per
    phase, each draining ``b - 1`` children whose flag writes partially
    overlap (:data:`HYPER_CHILD_OVERLAP`).  Fewer rounds at scale than the
    centralized gather, which is exactly the vendor gap the
    ``runtime_compare`` experiment measures at >= 64 threads.
``centralized``
    a plain counter barrier (every thread RMWs one line, serialized):
    ``n - 1`` gather handoffs plus a ``ceil(log2 n)`` release broadcast.
    No preset uses it by default; it exists to model worst-case runtimes
    and for ablation experiments.

*Wait policy* — ``active`` waiters spin (they steal SMT issue slots and
contend for lines exactly as the seed model assumed), ``passive`` waiters
sleep in the kernel after :attr:`RuntimeProfile.spin_before_sleep` seconds
of spinning (``KMP_BLOCKTIME``).  Sleeping waiters stop paying the SMT
spin penalties but every signal that reaches them must traverse the
scheduler wakeup path (see :func:`repro.sched.model.wakeup_path_cost`).

*Constant overrides* — :attr:`fork_scale`, :attr:`handoff_scale` and
:attr:`jitter_scale` scale the platform's calibrated fork/lock/jitter
constants per vendor (a distributed barrier spreads contention, so libomp
gets a slightly lower jitter scale).

The registry (:func:`get_runtime_profile`, :func:`available_runtimes`)
names two presets: ``gnu`` (GCC libgomp — the default, reproducing the
seed model exactly) and ``llvm`` (LLVM libomp).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.omp.env import OMPEnvironment

__all__ = [
    "BarrierAlgorithm",
    "HYPER_CHILD_OVERLAP",
    "RuntimeProfile",
    "WaitPolicy",
    "available_runtimes",
    "default_profile",
    "get_runtime_profile",
]


class WaitPolicy(enum.Enum):
    """``OMP_WAIT_POLICY``: how threads wait at barriers and between regions."""

    ACTIVE = "active"
    PASSIVE = "passive"


class BarrierAlgorithm(enum.Enum):
    """Barrier implementation families (see module docstring)."""

    GATHER_RELEASE = "gather_release"
    HYPER = "hyper"
    CENTRALIZED = "centralized"


#: Fraction of a hyper-barrier round's child signals that serialize on the
#: parent: each round drains ``b - 1`` children but their flag lines arrive
#: partially overlapped, so the round costs ``1 + OVERLAP * (b - 1)`` line
#: latencies rather than ``b - 1``.
HYPER_CHILD_OVERLAP = 0.1


@dataclass(frozen=True)
class RuntimeProfile:
    """One concrete OpenMP implementation's policy fingerprint.

    Attributes
    ----------
    name:
        Registry key (``gnu`` / ``llvm`` / custom).
    vendor:
        Human-readable implementation name.
    barrier_algorithm / barrier_branching:
        Barrier family and (for ``hyper``) its branching factor.
    wait_policy:
        Default ``OMP_WAIT_POLICY`` of this implementation.
    spin_before_sleep:
        Seconds a passive waiter spins before sleeping (``KMP_BLOCKTIME``;
        ``inf`` = spin forever, ``0`` = sleep immediately).
    fork_scale / handoff_scale:
        Multipliers on the platform's fork-signalling and lock-handoff
        constants.
    jitter_scale:
        Multiplier on the contention-jitter sigma.
    """

    name: str
    vendor: str
    barrier_algorithm: BarrierAlgorithm = BarrierAlgorithm.GATHER_RELEASE
    barrier_branching: int = 4
    wait_policy: WaitPolicy = WaitPolicy.ACTIVE
    spin_before_sleep: float = math.inf
    fork_scale: float = 1.0
    handoff_scale: float = 1.0
    jitter_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("runtime profile needs a name")
        if self.barrier_branching < 2:
            raise ConfigurationError(
                f"barrier branching factor must be >= 2, got {self.barrier_branching}"
            )
        if self.spin_before_sleep < 0:
            raise ConfigurationError("spin_before_sleep must be non-negative")
        for field_name in ("fork_scale", "handoff_scale", "jitter_scale"):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{field_name} must be positive")

    # -- wait policy ---------------------------------------------------------

    @property
    def passive(self) -> bool:
        return self.wait_policy is WaitPolicy.PASSIVE

    def sleep_share(self, expected_gap: float = math.inf) -> float:
        """Fraction of waiters asleep when a signal reaches them.

        *expected_gap* is the typical time a thread waits between useful
        work (e.g. the gap between parallel regions).  Active waiters never
        sleep.  Passive waiters spin for :attr:`spin_before_sleep` first,
        so short gaps behave like active waiting and long gaps approach
        fully-sleeping behaviour:

        >>> p = RuntimeProfile("x", "X", wait_policy=WaitPolicy.PASSIVE,
        ...                    spin_before_sleep=0.0)
        >>> p.sleep_share()
        1.0
        >>> p2 = replace(p, spin_before_sleep=0.2)
        >>> p2.sleep_share(expected_gap=0.1)
        0.0
        >>> p2.sleep_share(expected_gap=0.8)
        0.75
        """
        if not self.passive:
            return 0.0
        if self.spin_before_sleep == 0:
            return 1.0
        if math.isinf(self.spin_before_sleep) or expected_gap <= self.spin_before_sleep:
            return 0.0
        return 1.0 - self.spin_before_sleep / expected_gap

    # -- barrier shape ---------------------------------------------------------

    def barrier_span(self, n_threads: int) -> float:
        """Serialized line-transfer rounds of one full barrier for *n* threads.

        A pure function of ``(profile, n_threads)``, so results are memoized
        (the sync cost model asks per construct instance — hundreds of
        thousands of times per sweep for a handful of distinct team sizes).
        """
        return _barrier_span(self, n_threads)

    def barrier_span_fused(self, n_threads: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`barrier_span` over an array of team sizes.

        Each distinct size is priced once through the memoized scalar
        reference and fanned back out, so the result is elementwise
        bit-identical to mapping :meth:`barrier_span`.
        """
        n = np.asarray(n_threads, dtype=np.int64)
        uniq, inverse = np.unique(n, return_inverse=True)
        spans = np.asarray([_barrier_span(self, int(u)) for u in uniq])
        return spans[inverse].reshape(n.shape)

    # -- environment overrides ----------------------------------------------------

    def with_env(self, env: "OMPEnvironment") -> "RuntimeProfile":
        """Apply ``OMP_WAIT_POLICY`` / ``KMP_BLOCKTIME`` overrides from *env*.

        An explicit ``passive`` request drops the spin threshold to zero
        (sleep promptly, as ``OMP_WAIT_POLICY=passive`` does in both
        implementations) unless a blocktime is also given; an explicit
        ``active`` request spins forever.
        """
        wait_policy = getattr(env, "wait_policy", None)
        blocktime = getattr(env, "blocktime", None)
        if wait_policy is None and blocktime is None:
            return self
        profile = self
        if wait_policy is not None:
            spin = 0.0 if wait_policy is WaitPolicy.PASSIVE else math.inf
            profile = replace(profile, wait_policy=wait_policy, spin_before_sleep=spin)
        if blocktime is not None:
            profile = replace(profile, spin_before_sleep=float(blocktime))
        return profile

    def describe(self) -> str:
        spin = (
            "spin forever"
            if math.isinf(self.spin_before_sleep)
            else f"spin {self.spin_before_sleep * 1e3:g} ms then sleep"
        )
        return (
            f"{self.vendor}: {self.barrier_algorithm.value} barrier"
            f"(b={self.barrier_branching}), {self.wait_policy.value} wait ({spin})"
        )


@lru_cache(maxsize=4096)
def _barrier_span(profile: RuntimeProfile, n_threads: int) -> float:
    """Memoized body of :meth:`RuntimeProfile.barrier_span` (profiles are
    frozen/hashable, so ``(profile, n)`` is a sound cache key)."""
    n = n_threads
    if n <= 1:
        return 0.0
    algo = profile.barrier_algorithm
    if algo is BarrierAlgorithm.GATHER_RELEASE:
        return 2.0 * math.ceil(math.log2(n))
    if algo is BarrierAlgorithm.HYPER:
        b = profile.barrier_branching
        # integer ceil(log_b n): float log-division overcounts a round
        # at exact powers of non-power-of-2 branchings (e.g. b=5, n=125)
        rounds, reach = 0, 1
        while reach < n:
            reach *= b
            rounds += 1
        return 2.0 * rounds * (1.0 + HYPER_CHILD_OVERLAP * (b - 1))
    if algo is BarrierAlgorithm.CENTRALIZED:
        return float(n - 1) + math.ceil(math.log2(n))
    raise ConfigurationError(f"unknown barrier algorithm {algo!r}")


def _gnu_profile() -> RuntimeProfile:
    """GCC libgomp: centralized gather-release barrier, active spin waiters.

    This is the default and reproduces the seed model's cost formulas
    exactly (every scale 1.0, ``2 * ceil(log2 n)`` barrier rounds, no
    sleeping), so pre-vendor experiments are unchanged under it.
    """
    return RuntimeProfile(
        name="gnu",
        vendor="GCC libgomp",
        barrier_algorithm=BarrierAlgorithm.GATHER_RELEASE,
        wait_policy=WaitPolicy.ACTIVE,
        spin_before_sleep=math.inf,
    )


def _llvm_profile() -> RuntimeProfile:
    """LLVM libomp: hyper barrier (branching 4), 200 ms blocktime defaults.

    The distributed barrier needs fewer serialized rounds at scale and
    spreads line contention over the tree, so the fork release and the
    contention jitter run slightly below the libgomp calibration.
    """
    return RuntimeProfile(
        name="llvm",
        vendor="LLVM libomp",
        barrier_algorithm=BarrierAlgorithm.HYPER,
        barrier_branching=4,
        wait_policy=WaitPolicy.ACTIVE,
        spin_before_sleep=0.2,  # KMP_BLOCKTIME default: 200 ms
        fork_scale=0.9,
        jitter_scale=0.85,
    )


_PROFILES = {"gnu": _gnu_profile, "llvm": _llvm_profile}


def default_profile() -> RuntimeProfile:
    """The profile assumed when no vendor is selected (GCC libgomp)."""
    return _gnu_profile()


def get_runtime_profile(name: str) -> RuntimeProfile:
    """Look up a vendor profile by registry name.

    >>> get_runtime_profile("LLVM").barrier_algorithm.value
    'hyper'
    """
    try:
        factory = _PROFILES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown runtime {name!r}; choose from {sorted(_PROFILES)}"
        ) from None
    return factory()


def available_runtimes() -> tuple[str, ...]:
    return tuple(sorted(_PROFILES))
