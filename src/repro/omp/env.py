"""OpenMP environment configuration (the ``OMP_*`` variables).

:class:`OMPEnvironment` is the immutable description of how a benchmark
process would be launched: thread count, places, binding policy, loop
schedule and wait policy.  It can be built programmatically or parsed from
a mapping of environment variables (:meth:`OMPEnvironment.from_env`),
which also understands the vendor-specific ``KMP_BLOCKTIME`` (milliseconds
a passive waiter spins before sleeping, or ``infinite``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Optional

from repro.errors import ConfigurationError
from repro.omp.vendor import WaitPolicy
from repro.types import ProcBind, ScheduleKind


@dataclass(frozen=True)
class OMPEnvironment:
    """Launch-time OpenMP settings.

    Attributes
    ----------
    num_threads:
        ``OMP_NUM_THREADS``.
    places:
        ``OMP_PLACES`` string (``"threads"``, ``"cores"``, explicit lists,
        ...), or ``None`` for the implementation default (``cores``); only
        consulted when binding is requested.
    proc_bind:
        ``OMP_PROC_BIND``; ``false`` (the Linux default the paper starts
        from) leaves thread placement to the OS.
    schedule:
        Default ``schedule(runtime)`` kind and chunk (``OMP_SCHEDULE``).
    wait_policy:
        ``OMP_WAIT_POLICY``; ``None`` leaves the runtime vendor's default
        in force (see :mod:`repro.omp.vendor`).
    blocktime:
        ``KMP_BLOCKTIME``-style spin-before-sleep threshold in *seconds*;
        ``None`` keeps the vendor default.
    """

    num_threads: int
    places: Optional[str] = None
    proc_bind: ProcBind = ProcBind.FALSE
    schedule: ScheduleKind = ScheduleKind.STATIC
    schedule_chunk: Optional[int] = None
    wait_policy: Optional[WaitPolicy] = None
    blocktime: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise ConfigurationError(
                f"OMP_NUM_THREADS must be positive, got {self.num_threads}"
            )
        if self.schedule_chunk is not None and self.schedule_chunk <= 0:
            raise ConfigurationError(
                f"schedule chunk must be positive, got {self.schedule_chunk}"
            )
        if self.blocktime is not None and self.blocktime < 0:
            raise ConfigurationError(
                f"blocktime must be non-negative, got {self.blocktime}"
            )
        if self.proc_bind.is_bound and self.places is None:
            # the spec default when binding is requested without places
            object.__setattr__(self, "places", "cores")

    @property
    def bound(self) -> bool:
        """Whether threads are pinned (``OMP_PROC_BIND`` != ``false``)."""
        return self.proc_bind.is_bound

    def with_threads(self, n: int) -> "OMPEnvironment":
        return replace(self, num_threads=n)

    @classmethod
    def from_env(cls, env: Mapping[str, str]) -> "OMPEnvironment":
        """Parse a mapping of environment variables.

        >>> e = OMPEnvironment.from_env({
        ...     "OMP_NUM_THREADS": "16",
        ...     "OMP_PLACES": "cores",
        ...     "OMP_PROC_BIND": "close",
        ...     "OMP_SCHEDULE": "dynamic,1",
        ... })
        >>> e.num_threads, e.proc_bind.value, e.schedule.value, e.schedule_chunk
        (16, 'close', 'dynamic', 1)
        """
        try:
            num_threads = int(env.get("OMP_NUM_THREADS", "1"))
        except ValueError as exc:
            raise ConfigurationError(
                f"bad OMP_NUM_THREADS {env.get('OMP_NUM_THREADS')!r}"
            ) from exc

        places = env.get("OMP_PLACES")

        bind_text = env.get("OMP_PROC_BIND", "false").strip().lower()
        try:
            proc_bind = ProcBind(bind_text)
        except ValueError as exc:
            raise ConfigurationError(f"bad OMP_PROC_BIND {bind_text!r}") from exc

        kind = ScheduleKind.STATIC
        chunk: Optional[int] = None
        sched_text = env.get("OMP_SCHEDULE")
        if sched_text:
            head, _, chunk_text = sched_text.partition(",")
            try:
                kind = ScheduleKind(head.strip().lower())
            except ValueError as exc:
                raise ConfigurationError(f"bad OMP_SCHEDULE kind {head!r}") from exc
            if chunk_text.strip():
                try:
                    chunk = int(chunk_text)
                except ValueError as exc:
                    raise ConfigurationError(
                        f"bad OMP_SCHEDULE chunk {chunk_text!r}"
                    ) from exc

        wait_policy: Optional[WaitPolicy] = None
        wait_text = env.get("OMP_WAIT_POLICY")
        if wait_text is not None:
            try:
                wait_policy = WaitPolicy(wait_text.strip().lower())
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad OMP_WAIT_POLICY {wait_text!r}"
                ) from exc

        blocktime: Optional[float] = None
        block_text = env.get("KMP_BLOCKTIME")
        if block_text is not None:
            text = block_text.strip().lower()
            if text == "infinite":
                blocktime = math.inf
            else:
                try:
                    blocktime = int(text) / 1e3  # KMP_BLOCKTIME is in ms
                except ValueError as exc:
                    raise ConfigurationError(
                        f"bad KMP_BLOCKTIME {block_text!r}"
                    ) from exc

        return cls(
            num_threads=num_threads,
            places=places,
            proc_bind=proc_bind,
            schedule=kind,
            schedule_chunk=chunk,
            wait_policy=wait_policy,
            blocktime=blocktime,
        )

    def describe(self) -> str:
        """Shell-style one-liner (README/log rendering)."""
        parts = [f"OMP_NUM_THREADS={self.num_threads}"]
        if self.places is not None:
            parts.append(f"OMP_PLACES={self.places}")
        parts.append(f"OMP_PROC_BIND={self.proc_bind.value}")
        chunk = f",{self.schedule_chunk}" if self.schedule_chunk else ""
        parts.append(f"OMP_SCHEDULE={self.schedule.value}{chunk}")
        if self.wait_policy is not None:
            parts.append(f"OMP_WAIT_POLICY={self.wait_policy.value}")
        if self.blocktime is not None:
            text = (
                "infinite" if math.isinf(self.blocktime)
                else f"{round(self.blocktime * 1e3)}"
            )
            parts.append(f"KMP_BLOCKTIME={text}")
        return " ".join(parts)
