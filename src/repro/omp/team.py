"""Thread teams.

A :class:`Team` is the resolved execution context of a parallel region:
one CPU per thread (for bound teams, fixed for the whole run; for unbound
teams, the current OS placement) plus derived topology facts the cost
models need (NUMA/socket span, SMT sharing between teammates).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import BindingError
from repro.topology.hwthread import Machine


@dataclass(frozen=True)
class Team:
    """A resolved OpenMP thread team (thread 0 is the master)."""

    machine: Machine
    cpus: tuple[int, ...]
    bound: bool

    def __post_init__(self) -> None:
        if not self.cpus:
            raise BindingError("a team needs at least one thread")
        for c in self.cpus:
            if not 0 <= c < self.machine.n_cpus:
                raise BindingError(f"team cpu {c} outside {self.machine.name}")

    @property
    def n_threads(self) -> int:
        return len(self.cpus)

    @property
    def master_cpu(self) -> int:
        return self.cpus[0]

    @cached_property
    def numa_span(self) -> int:
        return self.machine.numa_span(self.cpus)

    @cached_property
    def socket_span(self) -> int:
        return self.machine.socket_span(self.cpus)

    @cached_property
    def active_cores(self) -> int:
        return self.machine.cores_spanned(self.cpus)

    @cached_property
    def smt_shared(self) -> np.ndarray:
        """Boolean per thread: shares its physical core with a teammate."""
        core_of = [self.machine.hwthread(c).core_id for c in self.cpus]
        counts: dict[int, int] = {}
        for core in core_of:
            counts[core] = counts.get(core, 0) + 1
        return np.asarray([counts[core] > 1 for core in core_of])

    @cached_property
    def uses_smt(self) -> bool:
        """True when any two teammates share a core (the MT configuration)."""
        return bool(self.smt_shared.any())

    @cached_property
    def outside_master_numa_fraction(self) -> float:
        """Fraction of threads whose CPU is outside the master's NUMA domain."""
        master_numa = self.machine.hwthread(self.master_cpu).numa_id
        outside = sum(
            1 for c in self.cpus if self.machine.hwthread(c).numa_id != master_numa
        )
        return outside / self.n_threads

    @cached_property
    def outside_master_socket_fraction(self) -> float:
        """Fraction of threads whose CPU is outside the master's socket."""
        master_socket = self.machine.hwthread(self.master_cpu).socket_id
        outside = sum(
            1 for c in self.cpus if self.machine.hwthread(c).socket_id != master_socket
        )
        return outside / self.n_threads

    def with_cpus(self, cpus: list[int]) -> "Team":
        """A team with the same machine/bound flag on different CPUs
        (used when the OS migrates an unbound team)."""
        return Team(self.machine, tuple(int(c) for c in cpus), self.bound)

    def describe(self) -> str:
        from repro.topology.cpuset import CpuSet

        kind = "bound" if self.bound else "unbound"
        return (
            f"{self.n_threads} threads ({kind}) on cpus {CpuSet(self.cpus)} "
            f"[{self.active_cores} cores, {self.numa_span} NUMA, "
            f"{self.socket_span} socket(s)]"
        )
