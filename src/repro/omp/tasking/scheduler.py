"""The work-stealing task scheduler.

:class:`WorkStealingScheduler` executes one task graph on a resolved
:class:`~repro.omp.team.Team` by driving one generator process per thread
through the discrete-event engine (:mod:`repro.sim.engine`).  The model
follows the LLVM/libomp runtime:

* each thread owns a :class:`~repro.omp.tasking.deque.TaskDeque`; the
  owner pushes/pops LIFO at the bottom, thieves take FIFO from the top;
* an out-of-work thread scans the other team members in *random order*
  (drawn from its own named RNG stream — the paper's class of
  irreproducible runtime decisions, made reproducible here by seeding)
  and steals from the first non-empty deque it probes;
* every empty probe costs a cache-line read, and a fully failed scan
  triggers an exponential backoff — bounding both interconnect traffic
  and simulation events, the way libomp's thieves yield after a fruitless
  pass over the team;
* every runtime operation is priced by a
  :class:`~repro.omp.tasking.params.TaskCostModel`, so steals slow down
  when the team spans NUMA domains or sockets;
* task *bodies* execute against the run's frequency plan
  (cycle-accurate rescaling through the per-CPU trace) and absorb the OS
  noise stolen from their CPU during the body window, with SMT sharing
  derating throughput — the same physical substrate the worksharing
  executor uses.

Because the engine orders simultaneous events deterministically and every
random decision draws from a named per-thread stream, a given (team,
graph, streams) triple always yields the identical schedule — bit-equal
across serial and process-pool execution.

The engine is armed with a ``max_events`` runaway guard sized from the
graph, so a scheduling bug (e.g. a termination-detection error that leaves
thieves spinning) raises :class:`~repro.errors.SimulationError` instead of
hanging the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.freq.dvfs import FrequencyPlan
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.omp.tasking.deque import TaskDeque
from repro.omp.tasking.params import TaskCostModel
from repro.omp.tasking.task import Task
from repro.omp.team import Team
from repro.osnoise.model import NoiseRealization
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.process import Timeout


@dataclass(frozen=True, slots=True)
class TaskRunStats:
    """Outcome of one task-graph execution."""

    t_start: float
    t_end: float
    total_tasks: int
    tasks_executed: np.ndarray = field(compare=False)
    steals: np.ndarray = field(compare=False)
    failed_steals: np.ndarray = field(compare=False)
    idle_time: np.ndarray = field(compare=False)
    overhead_time: np.ndarray = field(compare=False)
    busy_time: np.ndarray = field(compare=False)
    events_executed: int = 0

    @property
    def makespan(self) -> float:
        return self.t_end - self.t_start

    @property
    def n_threads(self) -> int:
        return int(self.tasks_executed.size)

    @property
    def total_steals(self) -> int:
        return int(self.steals.sum())

    @property
    def total_failed_steals(self) -> int:
        return int(self.failed_steals.sum())

    @property
    def failed_steal_rate(self) -> float:
        """Empty fraction of all deque probes (0 when none were made).

        ``failed_steals`` counts individual empty probes (several per scan),
        so this is the probability a thief's probe found nothing.
        """
        attempts = self.total_steals + self.total_failed_steals
        return self.total_failed_steals / attempts if attempts else 0.0

    @property
    def idle_fraction(self) -> float:
        """Share of total thread-time spent looking for work."""
        span = self.makespan * self.n_threads
        return float(self.idle_time.sum()) / span if span > 0 else 0.0


class WorkStealingScheduler:
    """Executes task graphs for one team against one run's realization.

    Parameters
    ----------
    team:
        The resolved thread team (thread ``i`` runs on ``team.cpus[i]``).
    cost_model:
        Prices for the runtime operations.
    freq_plan / noise:
        The run's frequency traces and OS-noise realization (task bodies
        are rescaled and extended through them; runtime operations are
        treated as uncore-bound wall time).
    streams:
        One :class:`numpy.random.Generator` per thread — victim selection
        and per-task work jitter draw from thread ``i``'s own stream, so
        adding draws to one thread never perturbs another.
    max_events:
        Engine runaway cap; ``None`` sizes it from the graph
        (see :meth:`run`).
    tracer:
        Observability sink (docs/observability.md).  With the default
        :data:`~repro.obs.tracer.NULL_TRACER` every emission site is a
        single pre-hoisted boolean test; with a
        :class:`~repro.obs.tracer.SpanTracer` the scheduler records task
        bodies, spawns, pops, steals and backoff idling as per-thread
        spans plus queue-depth / busy-thread counter tracks.  Tracing
        never touches the RNG streams, so traced and untraced schedules
        are identical.
    """

    __slots__ = (
        "team",
        "cost_model",
        "freq_plan",
        "noise",
        "streams",
        "max_events",
        "tracer",
        "_stolen_sets",
        "_smt_shared",
    )

    def __init__(
        self,
        team: Team,
        cost_model: TaskCostModel,
        freq_plan: FrequencyPlan,
        noise: NoiseRealization,
        streams: Sequence[np.random.Generator],
        max_events: int | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if len(streams) != team.n_threads:
            raise ConfigurationError(
                f"need one RNG stream per thread: got {len(streams)} "
                f"for {team.n_threads} threads"
            )
        self.team = team
        self.cost_model = cost_model
        self.freq_plan = freq_plan
        self.noise = noise
        self.streams = list(streams)
        self.max_events = max_events
        self.tracer = tracer
        # per-thread hot-path lookups, resolved once per scheduler
        self._stolen_sets = [noise.stolen_on(cpu) for cpu in team.cpus]
        self._smt_shared = [bool(s) for s in team.smt_shared]

    # -- helpers -------------------------------------------------------------

    def _body_duration(self, thread: int, t: float, work: float) -> float:
        """Wall time of a task body started at *t* on this thread's CPU.

        One-pass noise accounting: the compute window is rescaled through
        the CPU's frequency trace, then extended by the OS time stolen
        inside it (noise falling into the extension itself is neglected —
        bodies are short against the noise processes).
        """
        if work <= 0:
            return 0.0
        p = self.cost_model.params
        if self._smt_shared[thread]:
            work = work / p.smt_efficiency
        cpu = self.team.cpus[thread]
        cycles = work * self.freq_plan.calibration_hz
        dur = self.freq_plan.duration_for_cycles(cpu, t, cycles)
        dur += self._stolen_sets[thread].overlap(t, t + dur)
        return dur

    def _default_cap(self, total_tasks: int) -> int:
        """Generous event budget: ~3 events per task + steal-loop slack."""
        return 10_000 + 40 * total_tasks + 4_000 * self.team.n_threads

    # -- execution -----------------------------------------------------------

    def run(
        self,
        tasks: Task | Sequence[Task],
        t_start: float = 0.0,
        initial_owner: int = 0,
    ) -> TaskRunStats:
        """Execute *tasks* (a root task or a flat bag) to quiescence.

        The initial tasks are pushed into ``initial_owner``'s deque (the
        encountering thread — thread 0 for a ``single``-generated bag),
        every thread enters the scheduling loop at *t_start*, and the
        region ends when the last task body completes.
        """
        initial = (tasks,) if isinstance(tasks, Task) else tuple(tasks)
        if not initial:
            raise ConfigurationError("task graph is empty")
        n = self.team.n_threads
        if not 0 <= initial_owner < n:
            raise ConfigurationError(
                f"initial owner {initial_owner} outside team of {n}"
            )
        total_tasks = sum(t.count() for t in initial)
        cap = (
            self.max_events
            if self.max_events is not None
            else self._default_cap(total_tasks)
        )
        engine = Engine(clock=Clock(t_start), max_events=cap, tracer=self.tracer)

        deques = [TaskDeque(owner=i) for i in range(n)]
        for task in initial:
            deques[initial_owner].push(task)

        state = _SchedulerState(
            outstanding=len(initial), t_done=t_start, queued=len(initial)
        )
        tasks_executed = np.zeros(n, dtype=np.int64)
        steals = np.zeros(n, dtype=np.int64)
        failed = np.zeros(n, dtype=np.int64)
        idle = np.zeros(n)
        overhead = np.zeros(n)
        busy = np.zeros(n)

        pop_cost = self.cost_model.pop_cost(self.team)
        create_cost = self.cost_model.create_cost(self.team)
        steal_cost = self.cost_model.steal_cost(self.team)
        failed_cost = self.cost_model.failed_steal_cost(self.team)
        jitter_sigma = self.cost_model.params.work_jitter_sigma
        jitter_mean = -0.5 * jitter_sigma**2
        clock = engine.clock
        tracer = self.tracer
        tracing = tracer.enabled  # hoisted once: the null path pays one bool test

        def execute(i: int, task: Task):
            """Spawn children, then run the body (generator fragment)."""
            children = task.children
            if children:
                deque_i = deques[i]
                for child in children:
                    deque_i.push(child)
                state.outstanding += len(children)
                state.queued += len(children)
                spawn_cost = len(children) * create_cost
                overhead[i] += spawn_cost
                if tracing:
                    tracer.span(
                        i, "task.spawn", clock.now, clock.now + spawn_cost,
                        cat="task", args={"children": len(children)},
                    )
                    tracer.counter("queued_tasks", clock.now, state.queued)
                yield Timeout(spawn_cost)
            work = task.work
            if jitter_sigma > 0.0 and work > 0.0:
                work *= float(
                    self.streams[i].lognormal(mean=jitter_mean, sigma=jitter_sigma)
                )
            dur = self._body_duration(i, clock.now, work)
            busy[i] += dur
            if tracing:
                tracer.span(i, "task.body", clock.now, clock.now + dur, cat="task")
                state.running += 1
                tracer.counter("busy_threads", clock.now, state.running)
            yield Timeout(dur)
            tasks_executed[i] += 1
            state.outstanding -= 1
            if tracing:
                state.running -= 1
                tracer.counter("busy_threads", clock.now, state.running)
            if state.outstanding == 0:
                state.t_done = clock.now
            elif state.outstanding < 0:  # pragma: no cover - invariant
                raise SimulationError("task accounting went negative")

        def worker(i: int):
            rng = self.streams[i]
            deque_i = deques[i]
            failed_scans = 0
            while state.outstanding > 0:
                if deque_i:
                    failed_scans = 0
                    task = deque_i.pop()
                    state.queued -= 1
                    overhead[i] += pop_cost
                    if tracing:
                        tracer.span(
                            i, "deque.pop", clock.now, clock.now + pop_cost,
                            cat="task",
                        )
                        tracer.counter("queued_tasks", clock.now, state.queued)
                    yield Timeout(pop_cost)
                    yield from execute(i, task)
                    continue
                # out of local work: probe the other deques in random order
                # and take from the first non-empty one
                victim, empty_probes = self._scan_victims(i, deques, rng, state.queued)
                failed[i] += empty_probes
                if victim is not None:
                    failed_scans = 0
                    task = deques[victim].steal()
                    state.queued -= 1
                    steals[i] += 1
                    cost = empty_probes * failed_cost + steal_cost
                    overhead[i] += cost
                    if tracing:
                        tracer.span(
                            i, "steal", clock.now, clock.now + cost, cat="task",
                            args={"victim": victim, "empty_probes": empty_probes},
                        )
                        tracer.counter("queued_tasks", clock.now, state.queued)
                    yield Timeout(cost)
                    yield from execute(i, task)
                else:
                    failed_scans += 1
                    delay = (
                        empty_probes * failed_cost
                        + self.cost_model.backoff(failed_scans)
                    )
                    idle[i] += delay
                    if tracing:
                        tracer.span(
                            i, "idle.backoff", clock.now, clock.now + delay,
                            cat="task",
                            args={
                                "empty_probes": empty_probes,
                                "failed_scans": failed_scans,
                            },
                        )
                    yield Timeout(delay)

        for i in range(n):
            engine.spawn(worker(i), name=f"worker-{i}")
        engine.run()

        if state.outstanding != 0:  # pragma: no cover - defensive
            raise SimulationError(
                f"scheduler quiesced with {state.outstanding} tasks outstanding"
            )
        return TaskRunStats(
            t_start=t_start,
            t_end=state.t_done,
            total_tasks=total_tasks,
            tasks_executed=tasks_executed,
            steals=steals,
            failed_steals=failed,
            idle_time=idle,
            overhead_time=overhead,
            busy_time=busy,
            events_executed=engine.events_executed,
        )

    def _scan_victims(
        self,
        thief: int,
        deques: Sequence[TaskDeque],
        rng: np.random.Generator,
        queued: int = 1,
    ) -> tuple[int | None, int]:
        """One steal scan: probe the other threads in uniform random order.

        Returns ``(victim, empty_probes)`` — the first thread found with a
        non-empty deque (``None`` when every probe came up empty) and the
        number of empty deques probed before stopping.  The first victim
        probed is uniform over the team, so a lone producer is found after
        ``(n-1)/2`` empty probes in expectation rather than the geometric
        tail a probe-one-then-backoff thief would suffer.

        *queued* is the scheduler's count of tasks currently sitting in any
        deque.  The visit order is **always** drawn (RNG draw order per
        thread stream is the determinism contract — see
        ``docs/performance.md``), but when the caller knows every deque is
        empty the probe loop is skipped: the outcome is forced to the
        all-probes-empty result the loop would have produced.
        """
        n = self.team.n_threads
        if n == 1:
            return None, 0
        order = rng.permutation(n - 1)
        if queued <= 0:  # nothing stealable anywhere: every probe would miss
            return None, n - 1
        empty_probes = 0
        for idx in order.tolist():
            victim = idx + 1 if idx >= thief else idx
            if deques[victim]:
                return victim, empty_probes
            empty_probes += 1
        return None, empty_probes


@dataclass(slots=True)
class _SchedulerState:
    """Mutable shared state of one scheduling episode.

    ``outstanding`` counts tasks not yet finished executing; ``queued``
    counts tasks currently sitting in some deque (stealable), which lets an
    out-of-work thief skip probing when the whole team is drained.
    ``running`` counts threads currently inside a task body — maintained
    only while tracing (it feeds the ``busy_threads`` counter track and
    nothing else).
    """

    outstanding: int
    t_done: float
    queued: int = 0
    running: int = 0
