"""Task descriptors.

A :class:`Task` is one node of a task graph: a compute body (seconds at the
platform's calibration frequency, like every other work quantity in the
simulator) plus the children it spawns.  Task graphs are built *up front*
by the workload generators (:mod:`repro.omp.tasking.workloads`) so a given
parameter set always produces the identical graph; what varies between runs
is purely the runtime's behavior (victim selection, noise, frequency),
never the work itself.

Execution semantics (see the scheduler): when a worker begins a task it
first spawns the children into its own deque — the LLVM-style
``task``-then-work pattern of divide-and-conquer code — and then executes
the body.  Children therefore become stealable while the parent's body
runs.  Joins (``taskwait``/``taskgroup``) are modelled only as the final
quiescence barrier: the measured region ends when every task in the graph
has completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Task:
    """One node of a task graph."""

    work: float
    tag: str = "task"
    children: tuple["Task", ...] = field(default=())

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ConfigurationError(f"task {self.tag!r} has negative work")

    def count(self) -> int:
        """Total tasks in this subtree (including this one)."""
        return 1 + sum(child.count() for child in self.children)

    def total_work(self) -> float:
        """Total body work (seconds at calibration frequency) in the subtree."""
        return self.work + sum(child.total_work() for child in self.children)

    def depth(self) -> int:
        """Longest spawn chain in the subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def walk(self) -> Iterator["Task"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()
