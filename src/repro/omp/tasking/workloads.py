"""Task-graph workload generators.

Three generator families cover the classes of tasking code the paper's
benchmark suites (EPCC taskbench, BOTS-style kernels) exercise:

* :func:`taskloop_tasks` — the ``taskloop`` construct: a flat bag of chunk
  tasks over an iteration space, sized by ``grainsize`` or ``num_tasks``
  per the OpenMP 5 rules, with an optional deterministic work ramp
  (``imbalance``) that forces load imbalance and therefore stealing;
* :func:`fib_tasks` — the canonical recursive divide-and-conquer shape
  (``fib(n)`` spawns ``fib(n-1)`` and ``fib(n-2)``), whose deep unbalanced
  tree is what work-stealing was designed for;
* :func:`uniform_tasks` — EPCC taskbench's *parallel task generation*
  pattern: the master generates ``n`` equal tasks, so every other thread
  must steal its first task from the master's deque.

All generators are pure functions of their parameters: the same arguments
always produce the identical graph (work values included), keeping the
simulator's determinism guarantees intact.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.omp.tasking.task import Task


def taskloop_tasks(
    total_iters: int,
    iter_work: float,
    grainsize: int | None = None,
    num_tasks: int | None = None,
    imbalance: float = 0.0,
) -> tuple[Task, ...]:
    """Chunk an iteration space into ``taskloop`` tasks.

    Exactly one of ``grainsize`` / ``num_tasks`` may be given (OpenMP
    forbids both on one construct).  With ``grainsize`` the chunks hold
    ``grainsize`` iterations each and the remainder folds into the last
    chunk, so every chunk has size in ``[grainsize, 2*grainsize)`` — the
    specification's guarantee.  With ``num_tasks`` the space splits into
    that many near-equal chunks (sizes differ by at most one).  With
    neither, the runtime's default is modelled as ``num_tasks = 0`` left to
    the caller (a :class:`ConfigurationError` here, to keep the choice
    explicit).

    ``imbalance`` applies a linear per-iteration work ramp from
    ``(1 - imbalance)`` to ``(1 + imbalance)`` across the iteration space
    (total work preserved to first order), so early chunks are cheap and
    late chunks expensive — the classic trigger for stealing under LIFO
    execution.

    >>> [t.tag for t in taskloop_tasks(10, 1e-6, grainsize=4)]
    ['chunk0[0:4)', 'chunk1[4:10)']
    >>> [round(t.work * 1e6, 2) for t in taskloop_tasks(8, 1e-6, num_tasks=4)]
    [2.0, 2.0, 2.0, 2.0]
    """
    if total_iters <= 0:
        raise ConfigurationError("total_iters must be positive")
    if iter_work < 0:
        raise ConfigurationError("iter_work must be non-negative")
    if not 0.0 <= imbalance < 1.0:
        raise ConfigurationError("imbalance must be in [0, 1)")
    if (grainsize is None) == (num_tasks is None):
        raise ConfigurationError(
            "specify exactly one of grainsize / num_tasks (like the "
            "taskloop construct)"
        )

    bounds: list[tuple[int, int]] = []
    if grainsize is not None:
        if grainsize <= 0:
            raise ConfigurationError("grainsize must be positive")
        lo = 0
        while total_iters - lo >= 2 * grainsize:
            bounds.append((lo, lo + grainsize))
            lo += grainsize
        bounds.append((lo, total_iters))  # final chunk: [grainsize, 2*grainsize)
    else:
        assert num_tasks is not None
        if num_tasks <= 0:
            raise ConfigurationError("num_tasks must be positive")
        n = min(num_tasks, total_iters)
        base, extra = divmod(total_iters, n)
        lo = 0
        for k in range(n):
            size = base + (1 if k < extra else 0)
            bounds.append((lo, lo + size))
            lo += size

    def iter_cost(i: int) -> float:
        if imbalance == 0.0 or total_iters == 1:
            return iter_work
        ramp = 2.0 * i / (total_iters - 1) - 1.0  # -1 .. +1
        return iter_work * (1.0 + imbalance * ramp)

    tasks = []
    for k, (lo, hi) in enumerate(bounds):
        work = sum(iter_cost(i) for i in range(lo, hi))
        tasks.append(Task(work=work, tag=f"chunk{k}[{lo}:{hi})"))
    return tuple(tasks)


def fib_tasks(
    n: int,
    leaf_work: float,
    node_work: float,
    cutoff: int = 2,
) -> Task:
    """The ``fib(n)`` divide-and-conquer tree.

    ``fib(k)`` with ``k >= cutoff`` spawns ``fib(k-1)`` and ``fib(k-2)``
    and pays ``node_work`` itself (the combine); below the cutoff it is a
    leaf paying ``leaf_work``.  The number of tasks follows the Fibonacci
    recurrence, and the tree is maximally unbalanced — the first spawn's
    subtree is ~1.6x the second's at every level.

    >>> fib_tasks(5, 1e-6, 1e-7).count()
    15
    """
    if n < 0:
        raise ConfigurationError("fib index must be non-negative")
    if cutoff < 1:
        raise ConfigurationError("cutoff must be >= 1")
    if leaf_work < 0 or node_work < 0:
        raise ConfigurationError("fib work parameters must be non-negative")
    if n < cutoff:
        return Task(work=leaf_work, tag=f"fib({n})")
    return Task(
        work=node_work,
        tag=f"fib({n})",
        children=(
            fib_tasks(n - 1, leaf_work, node_work, cutoff),
            fib_tasks(n - 2, leaf_work, node_work, cutoff),
        ),
    )


def uniform_tasks(n_tasks: int, task_work: float) -> tuple[Task, ...]:
    """EPCC taskbench's flat master-generated bag of equal tasks.

    >>> len(uniform_tasks(8, 1e-6))
    8
    """
    if n_tasks <= 0:
        raise ConfigurationError("n_tasks must be positive")
    if task_work < 0:
        raise ConfigurationError("task_work must be non-negative")
    return tuple(Task(work=task_work, tag=f"task{k}") for k in range(n_tasks))
