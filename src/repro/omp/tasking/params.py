"""Cost parameters and cost model for the explicit-tasking runtime.

:class:`TaskCostParams` is the tasking analogue of
:class:`~repro.omp.constructs.SyncCostParams`: platform constants (seconds)
for every runtime operation the work-stealing scheduler performs.  The
baseline values follow the LLVM/libomp implementation sketch — a Chase-Lev
deque per thread, owner operations mostly core-local, thief operations
paying cache-line transfers to the victim's core — calibrated so that task
creation sits in the high-hundreds-of-nanoseconds range EPCC taskbench
reports at moderate team sizes.

:class:`TaskCostModel` turns the constants into per-team costs the same way
:class:`~repro.omp.constructs.SyncCostModel` does for synchronization
constructs: thief-side operations scale with the team's distance-weighted
cache-line latency (a steal across sockets bounces the deque's top pointer
and the task descriptor over the interconnect), and every cost inflates by
``smt_task_factor`` when teammates share cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.omp.team import Team
from repro.units import ns, us


@dataclass(frozen=True, slots=True)
class TaskCostParams:
    """Platform constants for tasking-runtime operations (seconds).

    Attributes
    ----------
    task_create:
        Allocate + initialize one task descriptor (paid by the spawning
        thread per child, on top of the deque push).
    deque_push / deque_pop:
        Owner-side bottom operations on the thread's own deque.  Mostly
        core-local; the pop pays one atomic for the race with thieves.
    steal_attempt:
        One probe of a victim deque that finds it empty (a *failed* steal):
        read the top/bottom pair from the victim's cache line.
    steal_success:
        A successful steal: the probe plus the CAS on ``top`` and the
        transfer of the task descriptor to the thief's core.
    line_latency_ref:
        Reference line latency the base costs were calibrated against;
        thief-side costs scale by ``l_eff / line_latency_ref`` so wider
        teams (cross-NUMA, cross-socket) steal more slowly.
    steal_backoff_base / steal_backoff_factor / steal_backoff_max:
        Exponential backoff applied after consecutive *fully failed scans*
        (every victim probed empty), so an out-of-work thief polls instead
        of hammering the interconnect (and so the discrete-event
        simulation stays event-bounded).
    smt_task_factor:
        Multiplier on every runtime operation when the team shares physical
        cores (spin-polling thieves steal issue slots from their sibling).
    smt_efficiency:
        Per-thread throughput factor for task *bodies* when two teammates
        share a core (task bodies are compute, unlike the latency-bound
        runtime operations).
    work_jitter_sigma:
        Log-normal sigma applied per executed task body (micro-contention
        on shared resources); ``0`` disables it.
    """

    task_create: float = ns(380.0)
    deque_push: float = ns(55.0)
    deque_pop: float = ns(90.0)
    steal_attempt: float = ns(150.0)
    steal_success: float = ns(520.0)
    line_latency_ref: float = ns(32.0)
    steal_backoff_base: float = us(0.4)
    steal_backoff_factor: float = 2.0
    steal_backoff_max: float = us(25.0)
    smt_task_factor: float = 1.3
    smt_efficiency: float = 0.85
    work_jitter_sigma: float = 0.02

    def __post_init__(self) -> None:
        for name in (
            "task_create", "deque_push", "deque_pop",
            "steal_attempt", "steal_success", "steal_backoff_base",
            "steal_backoff_max", "work_jitter_sigma",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.line_latency_ref <= 0:
            raise ConfigurationError("line_latency_ref must be positive")
        if self.steal_attempt > self.steal_success:
            raise ConfigurationError(
                "a failed steal cannot cost more than a successful one"
            )
        if self.steal_backoff_factor < 1.0:
            raise ConfigurationError("steal_backoff_factor must be >= 1")
        if self.steal_backoff_max < self.steal_backoff_base:
            raise ConfigurationError("steal_backoff_max below steal_backoff_base")
        if self.smt_task_factor < 1.0:
            raise ConfigurationError("smt_task_factor must be >= 1")
        if not 0.0 < self.smt_efficiency <= 1.0:
            raise ConfigurationError("smt_efficiency outside (0, 1]")


class TaskCostModel:
    """Per-team tasking-operation costs.

    ``sync`` supplies the platform's distance-weighted line latency (see
    :meth:`SyncCostModel.effective_line_latency`); when omitted, default
    :class:`SyncCostParams` latencies are used.
    """

    __slots__ = ("params", "sync")

    def __init__(self, params: TaskCostParams, sync: "SyncCostModel | None" = None):
        from repro.omp.constructs import SyncCostModel, SyncCostParams

        self.params = params
        self.sync = sync if sync is not None else SyncCostModel(SyncCostParams())

    def _team_factor(self, team: Team) -> float:
        """Thief-side scaling: the team's line-latency ratio.

        ``effective_line_latency`` already folds in the sync-side SMT
        inflation, so only owner-side costs apply ``smt_task_factor``
        separately.
        """
        l_eff = self.sync.effective_line_latency(team)
        return max(1.0, l_eff / self.params.line_latency_ref)

    def push_cost(self, team: Team) -> float:
        p = self.params
        return p.deque_push * (p.smt_task_factor if team.uses_smt else 1.0)

    def pop_cost(self, team: Team) -> float:
        p = self.params
        return p.deque_pop * (p.smt_task_factor if team.uses_smt else 1.0)

    def create_cost(self, team: Team) -> float:
        """Spawn one child: descriptor allocation + the owner push."""
        p = self.params
        smt = p.smt_task_factor if team.uses_smt else 1.0
        return (p.task_create + p.deque_push) * smt

    def steal_cost(self, team: Team) -> float:
        return self.params.steal_success * self._team_factor(team)

    def failed_steal_cost(self, team: Team) -> float:
        return self.params.steal_attempt * self._team_factor(team)

    def backoff(self, consecutive_failures: int) -> float:
        """Backoff delay after the n-th consecutive failed steal (n >= 1)."""
        if consecutive_failures <= 0:
            return 0.0
        p = self.params
        delay = p.steal_backoff_base * (
            p.steal_backoff_factor ** (consecutive_failures - 1)
        )
        return min(delay, p.steal_backoff_max)
