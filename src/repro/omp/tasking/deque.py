"""Per-thread task deques with Chase-Lev access semantics.

Each worker owns one :class:`TaskDeque`.  The owner pushes and pops at the
*bottom* (LIFO — freshest task first, which keeps divide-and-conquer
working sets cache-hot), while thieves remove from the *top* (FIFO — the
oldest task, which in recursive workloads is the largest remaining
subtree, so one steal moves a lot of work).

The simulator runs the runtime under a discrete-event engine, so there is
no real concurrency here; the class is a plain container whose two removal
ends encode the owner/thief policy.  The *costs* of the operations live in
:class:`~repro.omp.tasking.params.TaskCostModel`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.omp.tasking.task import Task


class TaskDeque:
    """One worker's double-ended task queue.

    >>> from repro.omp.tasking.task import Task
    >>> d = TaskDeque(owner=0)
    >>> for name in ("a", "b", "c"):
    ...     d.push(Task(work=1e-6, tag=name))
    >>> d.pop().tag        # owner takes the freshest
    'c'
    >>> d.steal().tag      # thief takes the oldest
    'a'
    >>> len(d)
    1
    """

    __slots__ = ("owner", "_tasks", "pushes", "pops", "steals_taken")

    def __init__(self, owner: int):
        self.owner = owner
        self._tasks: deque = deque()
        self.pushes = 0
        self.pops = 0
        self.steals_taken = 0

    def __len__(self) -> int:
        return len(self._tasks)

    def __bool__(self) -> bool:
        return bool(self._tasks)

    def push(self, task: "Task") -> None:
        """Owner operation: append at the bottom."""
        self._tasks.append(task)
        self.pushes += 1

    def pop(self) -> "Task":
        """Owner operation: remove the most recently pushed task (LIFO)."""
        if not self._tasks:
            raise SimulationError(f"pop from empty deque of worker {self.owner}")
        self.pops += 1
        return self._tasks.pop()

    def steal(self) -> "Task":
        """Thief operation: remove the oldest task (FIFO)."""
        if not self._tasks:
            raise SimulationError(f"steal from empty deque of worker {self.owner}")
        self.steals_taken += 1
        return self._tasks.popleft()

    def peek_steal(self) -> Optional["Task"]:
        """The task a thief would take, or ``None`` (probe, no removal)."""
        return self._tasks[0] if self._tasks else None
