"""Explicit-tasking runtime: work-stealing scheduler, deques, workloads.

The subsystem models the *other half* of an OpenMP runtime — explicit
tasks (``task`` / ``taskloop``) executed by a per-thread-deque
work-stealing scheduler — on the same simulated substrate (frequency
traces, OS noise, topology-priced operations) the worksharing models use:

* :mod:`repro.omp.tasking.params` — :class:`TaskCostParams` /
  :class:`TaskCostModel`, the tasking analogue of the sync-construct cost
  model;
* :mod:`repro.omp.tasking.deque` — per-thread owner-LIFO / thief-FIFO
  deques;
* :mod:`repro.omp.tasking.task` — task-graph descriptors;
* :mod:`repro.omp.tasking.workloads` — ``taskloop`` chunking
  (grainsize / num_tasks), recursive fib-style trees, EPCC-taskbench-style
  flat bags;
* :mod:`repro.omp.tasking.scheduler` — the discrete-event work-stealing
  scheduler with seeded random victim selection.
"""

from repro.omp.tasking.deque import TaskDeque
from repro.omp.tasking.params import TaskCostModel, TaskCostParams
from repro.omp.tasking.scheduler import TaskRunStats, WorkStealingScheduler
from repro.omp.tasking.task import Task
from repro.omp.tasking.workloads import fib_tasks, taskloop_tasks, uniform_tasks

__all__ = [
    "Task",
    "TaskDeque",
    "TaskCostParams",
    "TaskCostModel",
    "TaskRunStats",
    "WorkStealingScheduler",
    "taskloop_tasks",
    "fib_tasks",
    "uniform_tasks",
]
