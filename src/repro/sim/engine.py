"""Event loop.

The engine is a classic calendar queue over a binary heap.  Heap entries
are plain ``(time, seq, callback)`` tuples; the sequence number makes
ordering stable for simultaneous events (FIFO within a timestamp), which
the tests rely on for determinism, and — because it is unique — guarantees
tuple comparison never reaches the (incomparable) callback.

Cancellation is tracked *outside* the heap: :meth:`Engine.schedule_at`
returns a small :class:`ScheduledEvent` handle and the engine keeps a
side-set of cancelled sequence numbers.  Cancelled entries stay in the
heap until they surface (lazy deletion) but are compacted away eagerly
once they outnumber the live entries, so a cancel-heavy workload can
never bloat the queue or stall the run loop.  :attr:`Engine.pending` is
O(1) bookkeeping, not a queue scan.

Generator-based processes (see :mod:`repro.sim.process`) are driven by the
engine: each ``yield Timeout(dt)`` re-schedules the generator ``dt`` seconds
later.  The re-schedule reuses one trampoline closure bound at spawn time
(stored on the :class:`~repro.sim.process.Process`), so stepping a process
allocates only the heap tuple — no per-step lambda.
"""

from __future__ import annotations

import itertools
import math
from heapq import heapify, heappop, heappush
from typing import Callable, Generator, Optional

from repro.errors import SimulationError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.clock import Clock
from repro.sim.process import Process, Timeout


class ScheduledEvent:
    """Handle for a queued event, as returned by :meth:`Engine.schedule_at`.

    Ordering lives in the heap tuples, not here; the handle only supports
    :meth:`cancel` and inspection.  Cancelling an event that already ran
    (or was already cancelled) is a no-op.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], engine: "Engine"):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        ``cancelled`` flips only if the event was still queued; a late
        cancel on an executed event leaves the handle reporting the truth
        (the callback ran)."""
        if self.cancelled:
            return
        self.cancelled = self._engine._cancel(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "queued"
        return f"ScheduledEvent(t={self.time!r}, seq={self.seq}, {state})"


class Engine:
    """Discrete-event engine.

    ``max_events`` is a lifetime cap on executed events: once the engine has
    executed that many, the next :meth:`step` raises
    :class:`~repro.errors.SimulationError`.  It is a runaway guard — a buggy
    process that re-arms itself forever (e.g. a steal loop that never
    terminates) fails fast with a diagnostic instead of spinning; it is not
    a way to pause a simulation (use ``run(until=...)`` for that).  The cap
    is checked *before* the next event is removed from the queue, so a
    caller that catches the error holds a consistent engine: the event that
    tripped the cap is still queued and a later ``run()`` (e.g. after
    raising the cap) resumes exactly where the simulation stopped.

    Examples
    --------
    >>> eng = Engine()
    >>> seen = []
    >>> _ = eng.schedule_at(2.0, lambda: seen.append("b"))
    >>> _ = eng.schedule_at(1.0, lambda: seen.append("a"))
    >>> eng.run()
    >>> seen
    ['a', 'b']
    >>> eng.clock.now
    2.0
    """

    __slots__ = (
        "clock",
        "max_events",
        "tracer",
        "_queue",
        "_seq",
        "_events_executed",
        "_cancelled",
        "_handles",
    )

    def __init__(
        self,
        clock: Optional[Clock] = None,
        max_events: Optional[int] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if max_events is not None and max_events <= 0:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        self.clock = clock if clock is not None else Clock()
        self.max_events = max_events
        #: Observability sink (docs/observability.md).  The engine emits
        #: one coarse span per run() call — never per event — so the
        #: tracer costs one attribute read per episode on the null path.
        self.tracer = tracer
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_executed = 0
        #: Sequence numbers of cancelled-but-still-queued events.
        self._cancelled: set[int] = set()
        #: Sequence numbers with a live handle (removed once executed, so a
        #: late ``cancel()`` on a finished event cannot corrupt bookkeeping).
        self._handles: set[int] = set()

    # -- scheduling ---------------------------------------------------------

    def schedule_at(self, t: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* at absolute time *t* (must not be in the past).

        *t* must be finite: ``nan`` would corrupt heap ordering (every
        comparison against it is false) and ``inf`` can never execute, only
        wedge ``run(until=...)`` — both raise :class:`SimulationError`.
        """
        t = float(t)
        if not math.isfinite(t):
            raise SimulationError(f"event time must be finite, got {t!r}")
        if t < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: t={t!r} < now={self.clock.now!r}"
            )
        seq = next(self._seq)
        ev = ScheduledEvent(t, seq, callback, self)
        self._handles.add(seq)
        heappush(self._queue, (t, seq, callback))
        return ev

    def schedule_after(self, dt: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* ``dt >= 0`` seconds from now (*dt* finite)."""
        dt = float(dt)
        if not math.isfinite(dt):
            raise SimulationError(f"delay must be finite, got {dt!r}")
        if dt < 0:
            raise SimulationError(f"negative delay: {dt!r}")
        return self.schedule_at(self.clock.now + dt, callback)

    def _schedule_fast(self, t: float, callback: Callable[[], None]) -> None:
        """Internal hot path: queue an uncancellable event, no handle."""
        heappush(self._queue, (t, next(self._seq), callback))

    def spawn(self, generator: Generator, name: str = "proc") -> Process:
        """Start a generator-based process immediately (first step at ``now``)."""
        proc = Process(generator, name=name)

        def resume(_step=self._step_process, _proc=proc) -> None:
            _step(_proc)

        proc.resume = resume  # one trampoline per process, reused every step
        self._schedule_fast(self.clock.now, resume)
        return proc

    def _step_process(self, proc: Process) -> None:
        if not proc._alive:
            return
        command = proc.step()
        if command is None:  # process finished
            return
        if type(command) is Timeout or isinstance(command, Timeout):
            delay = command.delay
            if not (delay >= 0.0) or delay == math.inf:  # catches nan too
                proc.kill()
                raise SimulationError(
                    f"process {proc.name!r} yielded non-finite or negative "
                    f"timeout {delay!r}"
                )
            self._schedule_fast(self.clock.now + delay, proc.resume)
        else:
            proc.kill()
            raise SimulationError(
                f"process {proc.name!r} yielded unsupported command {command!r}"
            )

    # -- cancellation bookkeeping -------------------------------------------

    def _cancel(self, seq: int) -> bool:
        """Record a cancellation; ``False`` if the event already left the
        queue (executed, or popped as previously-cancelled)."""
        if seq not in self._handles or seq in self._cancelled:
            return False
        self._cancelled.add(seq)
        if 2 * len(self._cancelled) > len(self._queue):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop every cancelled entry from the heap and re-heapify.

        Mutates the queue list IN PLACE (slice assignment): ``run()`` and
        ``step()`` hold a local alias to it while dispatching callbacks,
        and a callback may cancel events and trigger this compaction —
        rebinding ``self._queue`` would strand the running loop on a
        stale list.
        """
        cancelled = self._cancelled
        if not cancelled:
            return
        self._queue[:] = [e for e in self._queue if e[1] not in cancelled]
        heapify(self._queue)
        self._handles -= cancelled
        cancelled.clear()

    def _discard(self, seq: int) -> None:
        """Forget a popped entry's handle/cancellation state."""
        self._handles.discard(seq)
        self._cancelled.discard(seq)

    # -- running ------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued (not yet executed, not cancelled) events."""
        return len(self._queue) - len(self._cancelled)

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def _check_cap(self) -> None:
        if self.max_events is not None and self._events_executed >= self.max_events:
            raise SimulationError(
                f"engine event cap exceeded ({self.max_events} events "
                f"executed, {self.pending} still pending at "
                f"t={self.clock.now!r}); likely a runaway process"
            )

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the queue is empty.

        The lifetime cap is checked *before* the event is popped, so a cap
        error leaves the queue intact and the simulation resumable.
        """
        queue = self._queue
        cancelled = self._cancelled
        while queue:
            if cancelled and queue[0][1] in cancelled:
                _, seq, _ = heappop(queue)
                self._discard(seq)
                continue
            self._check_cap()
            t, seq, callback = heappop(queue)
            if self._handles:
                self._handles.discard(seq)
            self.clock.advance_to(t)
            callback()
            self._events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run until the queue drains or the clock would pass *until*.

        When *until* is given, the clock is left exactly at *until* and any
        later events stay queued (so a simulation can be resumed).

        *max_events* is a per-call budget (distinct from the lifetime cap):
        executed events *and* cancelled entries discarded from the head of
        the queue both count against it, so even a pathological
        cancel-heavy queue cannot spin this loop unboundedly.
        """
        executed = 0
        queue = self._queue
        cancelled = self._cancelled
        handles = self._handles
        clock = self.clock
        t_begin = clock.now
        while queue:
            head = queue[0]
            if cancelled and head[1] in cancelled:
                if executed >= max_events:
                    raise SimulationError(
                        f"event budget exceeded ({max_events} events); "
                        f"likely a runaway periodic process"
                    )
                heappop(queue)
                self._discard(head[1])
                executed += 1
                continue
            if until is not None and head[0] > until:
                break
            if executed >= max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events} events); "
                    f"likely a runaway periodic process"
                )
            # read the cap fresh each event: a callback may tighten it
            # (watchdog pattern), and step()-driven loops honor that
            if self.max_events is not None and self._events_executed >= self.max_events:
                self._check_cap()
            heappop(queue)
            if handles:
                handles.discard(head[1])
            clock.advance_to(head[0])
            head[2]()
            self._events_executed += 1
            executed += 1
        if until is not None and until > clock.now:
            clock.advance_to(until)
        if self.tracer.enabled and executed:
            self.tracer.span(
                0, "engine.run", t_begin, clock.now, cat="engine",
                args={"events": executed, "pending": self.pending},
            )
