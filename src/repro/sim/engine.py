"""Event loop.

The engine is a classic calendar queue over a binary heap.  Events are
``(time, sequence, callback)`` triples; the sequence number makes ordering
stable for simultaneous events (FIFO within a timestamp), which the tests
rely on for determinism.

Generator-based processes (see :mod:`repro.sim.process`) are driven by the
engine: each ``yield Timeout(dt)`` re-schedules the generator ``dt`` seconds
later.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.process import Process, Timeout


@dataclass(order=True)
class ScheduledEvent:
    """A queued event.  Ordered by (time, seq) so ties are FIFO."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Engine:
    """Discrete-event engine.

    ``max_events`` is a lifetime cap on executed events: once the engine has
    executed that many, the next :meth:`step` raises
    :class:`~repro.errors.SimulationError`.  It is a runaway guard — a buggy
    process that re-arms itself forever (e.g. a steal loop that never
    terminates) fails fast with a diagnostic instead of spinning; it is not
    a way to pause a simulation (use ``run(until=...)`` for that).

    Examples
    --------
    >>> eng = Engine()
    >>> seen = []
    >>> _ = eng.schedule_at(2.0, lambda: seen.append("b"))
    >>> _ = eng.schedule_at(1.0, lambda: seen.append("a"))
    >>> eng.run()
    >>> seen
    ['a', 'b']
    >>> eng.clock.now
    2.0
    """

    def __init__(self, clock: Optional[Clock] = None, max_events: Optional[int] = None):
        if max_events is not None and max_events <= 0:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        self.clock = clock if clock is not None else Clock()
        self.max_events = max_events
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._events_executed = 0

    # -- scheduling ---------------------------------------------------------

    def schedule_at(self, t: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* at absolute time *t* (must not be in the past)."""
        if t < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: t={t!r} < now={self.clock.now!r}"
            )
        ev = ScheduledEvent(float(t), next(self._seq), callback)
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_after(self, dt: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* ``dt >= 0`` seconds from now."""
        if dt < 0:
            raise SimulationError(f"negative delay: {dt!r}")
        return self.schedule_at(self.clock.now + dt, callback)

    def spawn(self, generator: Generator, name: str = "proc") -> Process:
        """Start a generator-based process immediately (first step at ``now``)."""
        proc = Process(generator, name=name)
        self.schedule_at(self.clock.now, lambda: self._step_process(proc))
        return proc

    def _step_process(self, proc: Process) -> None:
        if not proc.alive:
            return
        command = proc.step()
        if command is None:  # process finished
            return
        if isinstance(command, Timeout):
            if command.delay < 0:
                proc.kill()
                raise SimulationError(
                    f"process {proc.name!r} yielded negative timeout {command.delay!r}"
                )
            self.schedule_after(command.delay, lambda: self._step_process(proc))
        else:
            proc.kill()
            raise SimulationError(
                f"process {proc.name!r} yielded unsupported command {command!r}"
            )

    # -- running ------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued (not yet executed, not cancelled) events."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if (
                self.max_events is not None
                and self._events_executed >= self.max_events
            ):
                raise SimulationError(
                    f"engine event cap exceeded ({self.max_events} events "
                    f"executed, {self.pending + 1} still pending at "
                    f"t={self.clock.now!r}); likely a runaway process"
                )
            self.clock.advance_to(ev.time)
            ev.callback()
            self._events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run until the queue drains or the clock would pass *until*.

        When *until* is given, the clock is left exactly at *until* and any
        later events stay queued (so a simulation can be resumed).
        """
        executed = 0
        while self._queue:
            ev = self._queue[0]
            if ev.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and ev.time > until:
                break
            if executed >= max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events} events); "
                    f"likely a runaway periodic process"
                )
            self.step()
            executed += 1
        if until is not None and until > self.clock.now:
            self.clock.advance_to(until)
