"""Simulated clock.

A :class:`Clock` is a monotonic, manually advanced notion of "now" shared by
every component participating in one simulation.  Keeping it as its own tiny
object (rather than a float attribute on the engine) lets passive models —
frequency traces, the sysfs shim, the frequency logger — observe time without
depending on the event loop.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonic simulated time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time *t*.

        Raises
        ------
        SimulationError
            If *t* is in the past; simulated time never flows backwards.
        """
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now!r}, requested={t!r}"
            )
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by *dt* seconds (``dt >= 0``)."""
        if dt < 0:
            raise SimulationError(f"negative clock advance: {dt!r}")
        self._now += float(dt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.9f})"
