"""Right-continuous piecewise-constant signals.

Used throughout the simulator for per-core frequency traces: a signal holds
breakpoints ``t_0 < t_1 < ... < t_{n-1}`` and values ``v_0 ... v_{n-1}``
where ``v_i`` applies on ``[t_i, t_{i+1})`` and ``v_{n-1}`` extends to
infinity.  All queries are NumPy-vectorized; integration is exact.

The inverse-integral query :meth:`PiecewiseConstant.invert_integral` answers
the central question of the execution model: *starting at time t, how long
until a core running at frequency f(t) retires W cycles?*
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from math import inf
from typing import Iterable, Sequence

import numpy as np

from repro.errors import TraceError


@dataclass(frozen=True, slots=True)
class TraceSample:
    """One (time, value) observation, e.g. a frequency-logger reading."""

    time: float
    value: float


class PiecewiseConstant:
    """An immutable right-continuous step function.

    Parameters
    ----------
    times:
        Strictly increasing breakpoints (seconds).  The signal is undefined
        before ``times[0]``.
    values:
        Signal value on each ``[times[i], times[i+1])`` segment;
        ``len(values) == len(times)``.
    """

    __slots__ = ("times", "values", "_lists")

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        t = np.asarray(times, dtype=np.float64)
        v = np.asarray(values, dtype=np.float64)
        if t.ndim != 1 or v.ndim != 1:
            raise TraceError("times and values must be one-dimensional")
        if t.size == 0:
            raise TraceError("a trace needs at least one breakpoint")
        if t.size != v.size:
            raise TraceError(f"length mismatch: {t.size} times vs {v.size} values")
        if t.size > 1 and not np.all(np.diff(t) > 0):
            raise TraceError("breakpoints must be strictly increasing")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "values", v)
        object.__setattr__(self, "_lists", None)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("PiecewiseConstant is immutable")

    # -- constructors -------------------------------------------------------

    @classmethod
    def constant(cls, value: float, start: float = 0.0) -> "PiecewiseConstant":
        """A signal with a single value from *start* onwards."""
        return cls([start], [value])

    @classmethod
    def from_segments(
        cls, segments: Iterable[tuple[float, float]], start: float = 0.0
    ) -> "PiecewiseConstant":
        """Build from ``(duration, value)`` pairs laid end to end from *start*."""
        times = [start]
        values = []
        t = start
        for duration, value in segments:
            if duration <= 0:
                raise TraceError(f"segment duration must be positive, got {duration}")
            values.append(value)
            t += duration
            times.append(t)
        if not values:
            raise TraceError("from_segments needs at least one segment")
        # last breakpoint closes nothing; drop it and let the final value extend
        return cls(times[:-1], values)

    # -- queries ------------------------------------------------------------

    @property
    def start(self) -> float:
        return float(self.times[0])

    def __len__(self) -> int:
        return int(self.times.size)

    def _as_lists(self) -> tuple[list[float], list[float]]:
        """Times/values as plain Python lists, built once on first use.

        Scalar queries dominate the simulation hot path (one per task body
        / region segment); ``bisect`` over a float list plus list indexing
        avoids a NumPy round-trip per query while returning the exact same
        float64 values.
        """
        cached = self._lists
        if cached is None:
            cached = (self.times.tolist(), self.values.tolist())
            object.__setattr__(self, "_lists", cached)
        return cached

    def _segment_index(self, t: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.times, t, side="right") - 1
        if np.any(idx < 0):
            raise TraceError(
                f"query before trace start {self.start}: min t = {np.min(t)}"
            )
        return idx

    def _seg_idx(self, t: float) -> int:
        """Scalar segment lookup (same semantics as :meth:`_segment_index`)."""
        times, _ = self._as_lists()
        idx = bisect_right(times, t) - 1
        if idx < 0:
            raise TraceError(f"query before trace start {self.start}: min t = {t}")
        return idx

    def value_at(self, t):
        """Signal value at time(s) *t* (scalar or array)."""
        if type(t) is float or type(t) is int:
            return self._as_lists()[1][self._seg_idx(t)]
        t_arr = np.asarray(t, dtype=np.float64)
        idx = self._segment_index(np.atleast_1d(t_arr))
        out = self.values[idx]
        return float(out[0]) if t_arr.ndim == 0 else out

    def integrate(self, a: float, b: float) -> float:
        """Exact integral of the signal over ``[a, b]`` (``a <= b``)."""
        if b < a:
            raise TraceError(f"integrate: b={b} < a={a}")
        if b == a:
            return 0.0
        ia = self._seg_idx(a)
        ib = self._seg_idx(b)
        times, values = self._as_lists()
        if ia == ib:
            return float(values[ia] * (b - a))
        total = values[ia] * (times[ia + 1] - a)
        if ib > ia + 1:
            seg_lens = np.diff(self.times[ia + 1 : ib + 1])
            total += float(np.dot(self.values[ia + 1 : ib], seg_lens))
        total += values[ib] * (b - times[ib])
        return float(total)

    def mean(self, a: float, b: float) -> float:
        """Time-average of the signal over ``[a, b]`` (``a < b``)."""
        if b <= a:
            raise TraceError(f"mean: window [{a}, {b}] is empty")
        return self.integrate(a, b) / (b - a)

    def invert_integral(self, a: float, target: float) -> float:
        """Smallest ``t >= a`` with ``integrate(a, t) == target``.

        Requires a strictly positive signal from *a* onwards (a frequency).
        """
        if target < 0:
            raise TraceError(f"invert_integral: negative target {target}")
        if target == 0:
            return a
        idx = self._seg_idx(a)
        times, values = self._as_lists()
        t = a
        remaining = float(target)
        n = len(times)
        while True:
            v = values[idx]
            if v <= 0:
                raise TraceError(
                    f"invert_integral requires positive signal, got {v} at segment {idx}"
                )
            seg_end = times[idx + 1] if idx + 1 < n else inf
            capacity = v * (seg_end - t)
            if remaining <= capacity:
                return t + remaining / v
            remaining -= capacity
            t = seg_end
            idx += 1

    def resample(self, sample_times: Sequence[float]) -> list[TraceSample]:
        """Sample the signal at given times (the frequency logger's view)."""
        st = np.asarray(sample_times, dtype=np.float64)
        vals = self.value_at(st)
        vals = np.atleast_1d(vals)
        return [TraceSample(float(t), float(v)) for t, v in zip(st, vals)]

    def restricted(self, a: float, b: float) -> "PiecewiseConstant":
        """The trace clipped to start at *a*, keeping breakpoints < *b*."""
        if b <= a:
            raise TraceError(f"restricted: empty window [{a}, {b}]")
        ia = int(self._segment_index(np.asarray([a]))[0])
        mask = (self.times > a) & (self.times < b)
        times = np.concatenate([[a], self.times[mask]])
        values = np.concatenate([[self.values[ia]], self.values[mask]])
        return PiecewiseConstant(times, values)

    def min_value(self, a: float, b: float) -> float:
        """Minimum signal value attained on ``[a, b)``."""
        r = self.restricted(a, b)
        return float(np.min(r.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PiecewiseConstant(n={len(self)}, start={self.start:.6f}, "
            f"values=[{self.values.min():.3g}..{self.values.max():.3g}])"
        )
