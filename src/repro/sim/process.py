"""Generator-based simulation processes.

A process is a Python generator that yields :class:`Timeout` commands; the
engine resumes it after the simulated delay.  This is a deliberately tiny
subset of SimPy's model — the only blocking primitive the reproduction needs
is "sleep for dt", used by periodic activities such as the frequency logger
and the OS load balancer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional


@dataclass(frozen=True, slots=True)
class Timeout:
    """Command: resume the yielding process after ``delay`` seconds."""

    delay: float


def waituntil(now: float, t: float) -> Timeout:
    """Convenience: a timeout that resumes at absolute time *t* (>= now)."""
    return Timeout(max(0.0, t - now))


class Process:
    """A running generator with liveness tracking.

    ``resume`` is the engine's per-process trampoline: one closure bound at
    spawn time that steps the generator, reused for every re-schedule so
    the event hot path allocates no per-step lambda.
    """

    __slots__ = ("generator", "name", "resume", "_alive", "_result")

    def __init__(self, generator: Generator, name: str = "proc"):
        self.generator = generator
        self.name = name
        self.resume: Any = None
        self._alive = True
        self._result: Any = None

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Value returned by the generator (``return x``), if finished."""
        return self._result

    def step(self) -> Optional[Timeout]:
        """Advance the generator one step; ``None`` means it finished."""
        if not self._alive:
            return None
        try:
            command = next(self.generator)
        except StopIteration as stop:
            self._alive = False
            self._result = stop.value
            return None
        return command

    def kill(self) -> None:
        """Terminate the process; it will never be stepped again."""
        if self._alive:
            self._alive = False
            self.generator.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        return f"Process({self.name!r}, {state})"
