"""Engine throughput benchmarks (events/second).

The discrete-event engine is the simulation hot path: every task body,
steal probe, backoff and logger sample is one engine event, so sweep
wall-clock scales directly with engine throughput.  This module measures
it three ways:

* :func:`bench_callback_events` — bare callback events through
  ``schedule_at`` + ``run`` (heap + dispatch overhead, no generators);
* :func:`bench_process_events` — generator processes yielding timeouts
  (the tasking-scheduler shape: trampoline + ``Process.step`` on top of
  the heap);
* :func:`bench_cancel_churn` — schedule/cancel churn exercising the
  cancellation side-set and lazy compaction;

plus one end-to-end probe, :func:`bench_figure8_smoke`, which runs a
work-stealing scheduler on a real Vera run context (frequency plan, OS
noise, taskloop workload — the figure8 configuration) and reports
*simulated events per second of wall time*, the number the ``repro-omp
bench`` CLI records into ``BENCH_engine.json`` so the performance
trajectory is tracked across PRs.

All benchmarks are deterministic in their simulated results (seeded);
only the wall-clock measurements vary run to run.
"""

from __future__ import annotations

import time
from typing import Any

from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.process import Timeout

__all__ = [
    "append_trajectory",
    "bench_callback_events",
    "bench_process_events",
    "bench_cancel_churn",
    "bench_figure8_smoke",
    "bench_rep_fusion",
    "carry_baseline",
    "run_benchmarks",
    "write_report",
]


def bench_callback_events(n_events: int = 200_000) -> float:
    """Events/sec for bare callbacks scheduled up front."""
    eng = Engine()

    def callback() -> None:
        pass

    start = time.perf_counter()
    for i in range(n_events):
        eng.schedule_at(float(i), callback)
    eng.run()
    elapsed = time.perf_counter() - start
    return n_events / elapsed


def bench_process_events(n_procs: int = 32, steps: int = 5_000) -> float:
    """Events/sec for generator processes yielding periodic timeouts."""
    eng = Engine()

    def proc():
        for _ in range(steps):
            yield Timeout(0.001)

    for i in range(n_procs):
        eng.spawn(proc(), name=f"proc-{i}")
    start = time.perf_counter()
    eng.run()
    elapsed = time.perf_counter() - start
    return eng.events_executed / elapsed


def bench_cancel_churn(n_rounds: int = 50_000) -> float:
    """Events/sec under heavy schedule-then-cancel churn.

    Each round schedules two future events and cancels one, so half of all
    queued entries die before execution — the pattern that exercises the
    cancellation side-set and the lazy heap compaction.
    """
    eng = Engine(clock=Clock())
    start = time.perf_counter()
    for i in range(n_rounds):
        t = float(i)
        keep = eng.schedule_at(t, _noop)
        kill = eng.schedule_at(t + 0.5, _noop)
        kill.cancel()
        del keep
    eng.run()
    elapsed = time.perf_counter() - start
    return eng.events_executed / elapsed


def _noop() -> None:
    pass


def bench_figure8_smoke(
    threads: int = 16,
    grainsize: int = 8,
    reps: int = 30,
    seed: int = 42,
) -> dict[str, float]:
    """Simulated events/sec of the figure8 smoke configuration.

    Builds one real Vera run context (frequency plan + OS noise, exactly
    as the figure8 experiment does for a bound taskbench run) and drives
    ``reps`` work-stealing taskloop repetitions through the engine,
    measuring engine events executed per wall-clock second.
    """
    from repro.bench.taskbench import Taskbench, TaskbenchParams
    from repro.harness.config import ExperimentConfig
    from repro.harness.runner import Runner
    from repro.omp.tasking.scheduler import WorkStealingScheduler

    params = TaskbenchParams(outer_reps=reps, grainsize=grainsize)
    config = ExperimentConfig(
        platform="vera",
        benchmark="taskbench",
        num_threads=threads,
        places="cores",
        proc_bind="close",
        runs=1,
        seed=seed,
        benchmark_params={"outer_reps": reps, "grainsize": grainsize},
    )
    runner = Runner(config)
    bench = Taskbench(params)
    horizon = bench.horizon_estimate(threads) * 1.5
    ctx = runner.runtime.start_run(0, runner.rng_factory, horizon)

    workload = params.build_workload(threads)
    label = params.label(threads)
    total_events = 0
    start = time.perf_counter()
    for rep in range(reps):
        streams = [
            ctx.stream("taskbench", label, "rep", rep, "thread", i)
            for i in range(ctx.team.n_threads)
        ]
        scheduler = WorkStealingScheduler(
            ctx.team, ctx.runtime.task_cost, ctx.freq_plan, ctx.noise, streams
        )
        fork = ctx.sync_cost.fork_cost(ctx.team)
        stats = scheduler.run(workload, t_start=ctx.t + fork)
        total_events += stats.events_executed
        ctx.advance(fork + stats.makespan + params.rep_gap)
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": elapsed,
        "events": float(total_events),
        "events_per_sec": total_events / elapsed,
    }


def bench_rep_fusion(
    runs: int = 30,
    reps: int = 40,
    threads: int = 16,
    seed: int = 42,
) -> dict[str, float]:
    """Runs/sec of the fused rep-axis engine vs the scalar run loop.

    Simulates the same multi-run syncbench configuration (``runs``
    independent runs of ``reps`` outer repetitions on a bound Vera team)
    twice — once through the scalar :class:`~repro.harness.runner.Runner`
    loop, once through :func:`repro.sim.fused.run_fused` — and reports
    runs simulated per wall-clock second for each.  The two results are
    asserted byte-identical before any number is reported: a speedup on
    diverged output is not a speedup.
    """
    from repro.errors import SimulationError
    from repro.harness.config import ExperimentConfig
    from repro.harness.runner import Runner
    from repro.sim.fused import run_fused

    config = ExperimentConfig(
        platform="vera",
        benchmark="syncbench",
        num_threads=threads,
        runs=runs,
        seed=seed,
        benchmark_params={"outer_reps": reps},
    )
    start = time.perf_counter()
    scalar = Runner(config).run()
    scalar_wall = time.perf_counter() - start
    start = time.perf_counter()
    fused = run_fused(Runner(config))
    fused_wall = time.perf_counter() - start
    if scalar.to_dict() != fused.to_dict():
        raise SimulationError(
            "fused rep-axis result diverged from the scalar engine; "
            "refusing to report a speedup on non-identical output"
        )
    return {
        "runs": runs,
        "reps": reps,
        "threads": threads,
        "scalar_wall_seconds": scalar_wall,
        "fused_wall_seconds": fused_wall,
        "scalar_runs_per_sec": runs / scalar_wall,
        "fused_runs_per_sec": runs / fused_wall,
        "speedup": scalar_wall / fused_wall,
    }


def run_benchmarks(quick: bool = False) -> dict[str, Any]:
    """Run the full engine benchmark suite; returns the report payload.

    ``quick`` shrinks every workload ~10x for CI smoke runs.
    """
    scale = 0.1 if quick else 1.0
    n_cb = max(10_000, int(200_000 * scale))
    n_procs, steps = 16, max(500, int(5_000 * scale))
    n_cancel = max(5_000, int(50_000 * scale))
    smoke_reps = max(5, int(30 * scale))

    # one warmup pass keeps allocator/JIT-free interpreter noise out of
    # the first measured number
    bench_callback_events(5_000)
    bench_process_events(4, 500)

    fusion_runs = max(6, int(30 * scale))
    fusion_reps = max(8, int(40 * scale))

    callbacks = bench_callback_events(n_cb)
    processes = bench_process_events(n_procs, steps)
    cancels = bench_cancel_churn(n_cancel)
    smoke = bench_figure8_smoke(reps=smoke_reps)
    fusion = bench_rep_fusion(runs=fusion_runs, reps=fusion_reps)
    from repro import __version__

    return {
        "schema": 1,
        "quick": quick,
        "version": __version__,
        "engine": {
            "callback_events_per_sec": round(callbacks),
            "process_events_per_sec": round(processes),
            "cancel_churn_events_per_sec": round(cancels),
        },
        "figure8_smoke": {
            "reps": smoke_reps,
            "wall_seconds": round(smoke["wall_seconds"], 4),
            "events": int(smoke["events"]),
            "events_per_sec": round(smoke["events_per_sec"]),
        },
        "rep_fusion": {
            "runs": fusion["runs"],
            "reps": fusion["reps"],
            "threads": fusion["threads"],
            "scalar_runs_per_sec": round(fusion["scalar_runs_per_sec"], 1),
            "fused_runs_per_sec": round(fusion["fused_runs_per_sec"], 1),
            "speedup": round(fusion["speedup"], 2),
        },
    }


def carry_baseline(report: dict[str, Any], prior: dict[str, Any]) -> dict[str, Any]:
    """Preserve a prior report's baseline block across re-runs.

    ``BENCH_engine.json`` carries a hand-recorded ``baseline_pre_overhaul``
    section (the pre-overhaul numbers the speedups are judged against);
    a fresh ``repro-omp bench`` run must not silently drop it.  Copies the
    baseline from *prior* into *report* and recomputes
    ``speedup_vs_baseline`` from the fresh numbers — but only when the
    fresh run used the same workload scale the baseline records
    (``quick`` flag): dividing ``--quick`` numbers by a full-workload
    baseline would publish apples-to-oranges speedups.
    """
    baseline = prior.get("baseline_pre_overhaul")
    if not isinstance(baseline, dict):
        return report
    report["baseline_pre_overhaul"] = baseline
    if report.get("quick", False) != baseline.get("quick", False):
        return report  # scale mismatch: keep the record, skip the ratios
    speedup: dict[str, float] = {}
    base_engine = baseline.get("engine", {})
    for key, value in report["engine"].items():
        base = base_engine.get(key)
        if base:
            speedup[key] = round(value / base, 2)
    base_smoke = baseline.get("figure8_smoke", {})
    if base_smoke.get("events_per_sec"):
        speedup["figure8_smoke_events_per_sec"] = round(
            report["figure8_smoke"]["events_per_sec"]
            / base_smoke["events_per_sec"],
            2,
        )
    if speedup:
        report["speedup_vs_baseline"] = speedup
    return report


def append_trajectory(
    report: dict[str, Any],
    prior: dict[str, Any] | None,
    stamp: str | None = None,
) -> dict[str, Any]:
    """Extend the prior report's append-only ``trajectory`` into *report*.

    Historically ``repro-omp bench --out`` clobbered the whole file, so
    every re-run erased the performance history.  The trajectory is an
    append-only list of past measurements: the prior file's entries are
    carried over and the *prior* report's own headline numbers are
    appended as one entry ``{stamp?, version?, quick, engine,
    figure8_smoke, rep_fusion?}`` before the fresh report replaces them
    at top level.  *stamp* is a caller-provided label (``--stamp``, e.g.
    a date or commit id) attached to the **new** report so the *next* run
    records it; the code version (``repro.__version__``) rides along the
    same way, so every trajectory entry says which code produced its
    numbers.  Nothing here reads a wall clock — an unstamped entry is
    simply unlabeled.
    """
    entries = []
    if isinstance(prior, dict):
        prior_entries = prior.get("trajectory")
        if isinstance(prior_entries, list):
            entries.extend(prior_entries)
        snapshot: dict[str, Any] = {}
        if prior.get("stamp") is not None:
            snapshot["stamp"] = prior["stamp"]
        for key in ("version", "quick", "engine", "figure8_smoke", "rep_fusion"):
            if key in prior:
                snapshot[key] = prior[key]
        if "engine" in snapshot or "figure8_smoke" in snapshot:
            entries.append(snapshot)
    if stamp is not None:
        report["stamp"] = stamp
    report["trajectory"] = entries
    return report


def write_report(
    report: dict[str, Any], path: Any, stamp: str | None = None
) -> dict[str, Any]:
    """Write *report* to *path*, carrying baseline and history forward.

    The one place the prior-report load / :func:`carry_baseline` /
    :func:`append_trajectory` / JSON serialization sequence lives — the
    ``repro-omp bench`` CLI and the ``benchmarks/bench_engine.py`` script
    both route through it, so the two emitters cannot diverge.  Returns
    the (possibly augmented) report.
    """
    import json
    from pathlib import Path

    out = Path(path)
    prior = None
    if out.exists():
        try:
            prior = json.loads(out.read_text())
        except ValueError:
            prior = None
        if isinstance(prior, dict):
            report = carry_baseline(report, prior)
    report = append_trajectory(report, prior, stamp=stamp)
    out.write_text(json.dumps(report, indent=1) + "\n")
    return report
