"""Discrete-event simulation substrate.

This package provides the small simulation kernel the rest of the library is
built on:

* :class:`~repro.sim.clock.Clock` — monotonic simulated time.
* :class:`~repro.sim.engine.Engine` — an event loop over a priority queue,
  supporting plain callbacks and generator-based processes.
* :class:`~repro.sim.trace.PiecewiseConstant` — right-continuous step
  signals with exact integration, used for per-core frequency traces and
  logger output.
* :class:`~repro.sim.intervals.IntervalSet` — sorted disjoint interval
  algebra used for noise/occupancy accounting.
"""

from repro.sim.clock import Clock
from repro.sim.engine import Engine, ScheduledEvent
from repro.sim.process import Process, Timeout, waituntil
from repro.sim.trace import PiecewiseConstant, TraceSample
from repro.sim.intervals import IntervalSet

__all__ = [
    "Clock",
    "Engine",
    "ScheduledEvent",
    "Process",
    "Timeout",
    "waituntil",
    "PiecewiseConstant",
    "TraceSample",
    "IntervalSet",
]
