"""Batch-fused rep-axis execution plane.

The scalar engine simulates the ``R`` runs of one configuration as ``R``
independent event loops.  For bound teams those runs share *everything*
deterministic — team resolution, construct costs, loop plans, bandwidth
solutions — and differ only in their named RNG streams (``("run", r)``
seed paths) and in the realizations drawn from them.  This module
evaluates all ``R`` runs simultaneously as ``(R,)``- and ``(R, n)``-shaped
numpy arrays over a new *rep axis*:

* per-run RNG draws become one batched draw per named stream
  (:meth:`repro.rng.RngFactory.rep_streams`), bit-equal per row;
* the region executor's hot queries run against rep-axis planes —
  noise-overlap windows (:class:`repro.sim.intervals.IntervalBatch`,
  whose length-grouped row sums are bit-identical to the scalar
  per-set reduction) and frequency-trace queries
  (:class:`repro.freq.dvfs.FrequencyPlanBatch`);
* the benchmark repetition loops iterate over the *time* axis only; every
  loop-body quantity is an array over the rep axis (lint rule PERF003
  rejects per-rep scalar loops in this module).

**The scalar engine stays the source of truth.**  Every fused result is
byte-identical to ``Runner.run()``: the rare plane entries that cannot be
proven exact (a frequency query spanning multiple trace segments) fall
back to the scalar reference per entry, and the whole path refuses shapes
it cannot reproduce exactly (:func:`fused_ineligibility`) — work-stealing
tasking (steal order is rep-coupled) and unbound teams (per-rep reforks
against machine-wide noise).  ``tests/test_fused.py`` locks the
equivalence over every registered experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.bench.epcc.common import target_innerreps
from repro.errors import ConfigurationError
from repro.freq.dvfs import FrequencyPlanBatch
from repro.harness.results import ExperimentResult, RunRecord
from repro.mem.bandwidth import BandwidthModel
from repro.mem.pages import PagePlacement
from repro.omp.constructs import CONSTRUCT_PROFILES
from repro.omp.region import NoiseMode
from repro.omp.schedule import plan_loop
from repro.osnoise.model import sibling_batch_fused, stolen_batch_fused
from repro.types import ScheduleKind, StreamKernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.config import ExperimentConfig
    from repro.harness.runner import Runner
    from repro.omp.runtime import RunContext

__all__ = ["FUSED_BENCHMARKS", "fused_ineligibility", "run_fused"]

#: Benchmarks with a fused formulation.  ``taskbench`` is deliberately
#: absent: its work-stealing deque order couples repetitions to the run's
#: full history, which has no per-rep array form.
FUSED_BENCHMARKS = frozenset({"babelstream", "schedbench", "syncbench"})


def fused_ineligibility(config: "ExperimentConfig") -> str | None:
    """Why *config* cannot take the fused path, or ``None`` if it can.

    The rules (documented in docs/performance.md):

    * the benchmark must have a fused formulation (``taskbench``'s steal
      order is rep-coupled);
    * the team must be bound — unbound teams refork placement on every
      repetition against machine-wide noise/frequency realizations, so
      their per-rep state is not expressible on a shared rep axis.
    """
    name = config.benchmark.lower()
    if name == "taskbench":
        return "taskbench's work-stealing order is rep-coupled"
    if name not in FUSED_BENCHMARKS:
        return f"benchmark {name!r} has no fused formulation"
    if not config.omp_environment().bound:
        return "unbound teams refork per repetition against machine-wide noise"
    return None


class _RegionBatch:
    """Rep-axis counterpart of :class:`repro.omp.region.RegionExecutor`.

    Holds one time cursor per run plus the padded noise/frequency planes,
    and mirrors ``RegionExecutor.execute`` operation for operation so each
    row reproduces the scalar arithmetic bit for bit (see the inline
    correspondence notes).
    """

    __slots__ = (
        "contexts", "team", "cpus", "n", "n_reps", "params", "t",
        "_team_freq", "_master_freq", "_stolen", "_sibling", "_sib_active",
        "calibration_hz", "wake0",
    )

    def __init__(self, contexts: list["RunContext"]):
        ctx0 = contexts[0]
        team = ctx0.team
        for ctx in contexts:
            if ctx.team.cpus != team.cpus or not ctx.team.bound:
                raise ConfigurationError(
                    "fused batch requires identical bound teams across runs"
                )
            if ctx.fork.episodes:
                raise ConfigurationError(
                    "fused batch cannot carry stacking episodes"
                )
        self.contexts = contexts
        self.team = team
        self.cpus = list(team.cpus)
        self.n = team.n_threads
        self.n_reps = len(contexts)
        self.params = ctx0.executor.params
        self.t = np.zeros(self.n_reps)
        plans = [ctx.freq_plan for ctx in contexts]
        self._team_freq = FrequencyPlanBatch(plans, self.cpus)
        self._master_freq = FrequencyPlanBatch(plans, [team.master_cpu])
        noises = [ctx.noise for ctx in contexts]
        self._stolen = stolen_batch_fused(noises, self.cpus)
        self._sibling = sibling_batch_fused(noises, self.cpus)
        # scalar reference: sibling pressure counts only where the SMT
        # sibling is not a teammate (team.smt_shared)
        self._sib_active = ~np.asarray(team.smt_shared, dtype=bool)
        self.calibration_hz = self._team_freq.calibration_hz
        self.wake0 = np.asarray([ctx.fork.wake_delays for ctx in contexts])

    def advance(self, dt: np.ndarray) -> None:
        # scalar reference: ctx.advance(duration + gap) -> t += dt
        self.t = self.t + dt

    def master_freq_at(self) -> np.ndarray:
        """Per-run master-CPU frequency at the current cursor, ``(R,)``."""
        return self._master_freq.freq_at_fused(self.t[:, None])[:, 0]

    def _durations_fused(
        self, starts: np.ndarray, cycles: np.ndarray
    ) -> np.ndarray:
        """Batched ``_compute_duration`` with per-entry scalar fallback."""
        durations, resolved = self._team_freq.duration_for_cycles_fused(
            starts, cycles
        )
        if not resolved.all():
            flat_d = durations.reshape(-1)
            flat_s = starts.reshape(-1)
            flat_c = cycles.reshape(-1)
            for k in np.flatnonzero(~resolved.reshape(-1)):
                run, col = divmod(int(k), self.n)
                flat_d[k] = self._team_freq.duration_for_cycles_scalar(
                    run, col, float(flat_s[k]), float(flat_c[k])
                )
        return durations

    def execute(
        self,
        work_seconds: np.ndarray,
        *,
        noise_mode: NoiseMode = NoiseMode.MAX,
        sync_overhead: np.ndarray | float = 0.0,
        queue_floor: np.ndarray | float = 0.0,
        wake_delays: np.ndarray | None = None,
        barrier_cost: float = 0.0,
        freq_sensitive: bool = True,
        smt_efficiency: float | None = None,
    ) -> np.ndarray:
        """One region across all runs; returns per-run durations ``(R,)``.

        *work_seconds* is ``(n,)`` (identical across runs) or ``(R, n)``;
        *sync_overhead* / *queue_floor* are scalars or ``(R,)``.  Every
        arithmetic step mirrors ``RegionExecutor.execute`` in order and
        associativity, so each row is bit-identical to the scalar result.
        """
        n = self.n
        p = self.params
        t = self.t
        work = np.asarray(work_seconds, dtype=np.float64)
        work = np.broadcast_to(work, (self.n_reps, n))
        sync = np.broadcast_to(
            np.asarray(sync_overhead, dtype=np.float64), (self.n_reps,)
        )
        if wake_delays is None:
            wake_delays = np.zeros(n)
        starts = t[:, None] + wake_delays

        if freq_sensitive:
            eff_value = (
                smt_efficiency if smt_efficiency is not None else p.smt_efficiency
            )
            if not 0.0 < eff_value <= 1.0:
                raise ConfigurationError(
                    f"smt_efficiency {eff_value} outside (0, 1]"
                )
            eff = np.where(self.team.smt_shared, eff_value, 1.0)
            adj_work = work / eff
            # scalar reference: cycles = work * calibration_hz, then
            # invert_integral(start, cycles) - start per (run, cpu)
            cycles = adj_work * self.calibration_hz
            durations = self._durations_fused(starts, cycles)
            # scalar guard `work_seconds <= 0 -> 0.0` (the batched first
            # segment already yields exactly 0.0 for zero cycles)
            durations = np.where(adj_work <= 0.0, 0.0, durations)
            sync_durations, sync_resolved = (
                self._master_freq.duration_for_cycles_fused(
                    t[:, None], (sync * self.calibration_hz)[:, None]
                )
            )
            sync_scaled = sync_durations[:, 0]
            if not sync_resolved.all():
                for k in np.flatnonzero(~sync_resolved[:, 0]):
                    sync_scaled[k] = self._master_freq.duration_for_cycles_scalar(
                        int(k), 0, float(t[k]),
                        float(sync[k] * self.calibration_hz),
                    )
            sync_scaled = np.where(sync > 0.0, sync_scaled, 0.0)
        else:
            durations = work.copy()
            sync_scaled = sync

        base_end = np.max(starts + durations, axis=1) + sync_scaled
        window_end = base_end + 0.25 * (base_end - t) + 1e-6

        flat_starts = starts.reshape(-1)
        flat_window = np.repeat(window_end, n)
        stolen = self._stolen.overlap_fused(flat_starts, flat_window)
        stolen = stolen.reshape(self.n_reps, n)
        sib_raw = self._sibling.overlap_fused(flat_starts, flat_window)
        sib_raw = sib_raw.reshape(self.n_reps, n)
        sibling = np.where(
            self._sib_active[None, :], sib_raw * p.smt_noise_penalty, 0.0
        )

        # bound forks carry no stacking episodes (asserted in __init__),
        # so per_thread_delay reduces to the sibling term exactly
        per_thread_delay = sibling
        if noise_mode is NoiseMode.MAX:
            per_thread_end = starts + durations + stolen + per_thread_delay
            arrival = np.max(per_thread_end, axis=1)
        elif noise_mode is NoiseMode.SYNC_SUM:
            shared_noise = p.sync_noise_kappa * np.sum(stolen, axis=1)
            per_thread_end = (
                starts + durations + per_thread_delay + shared_noise[:, None]
            )
            arrival = np.max(per_thread_end, axis=1)
        else:  # NoiseMode.BALANCED
            spread = (np.sum(stolen, axis=1) + np.sum(per_thread_delay, axis=1)) / n
            per_thread_end = starts + durations + spread[:, None]
            arrival = np.max(per_thread_end, axis=1)

        arrival = arrival + sync_scaled
        arrival = np.maximum(arrival, t + queue_floor)
        end = arrival + barrier_cost
        return end - t


# -- fused benchmark drivers ---------------------------------------------------


def _syncbench_rows(
    runner: "Runner", batch: _RegionBatch, bench: Any, constructs: tuple
) -> list[dict[str, Any]]:
    """Fused ``Syncbench.measure`` over every construct, all runs at once."""
    from repro.bench.epcc.syncbench import ConstructMeasurement

    p = bench.params
    ctx0 = batch.contexts[0]
    team = batch.team
    rows: list[dict[str, Any]] = [{} for _ in batch.contexts]
    for construct in constructs:
        profile = CONSTRUCT_PROFILES[construct]
        innerreps = target_innerreps(
            p.test_time, bench._iter_time_estimate(ctx0, construct)
        )
        cost = ctx0.sync_cost.construct_cost(construct, team)
        sigma = ctx0.sync_cost.jitter_sigma(team)
        streams = runner.rng_factory.rep_streams(
            batch.n_reps, "syncbench", construct.value
        )
        jitters = streams.lognormal(
            mean=-0.5 * sigma**2, sigma=sigma, size=p.outer_reps
        )
        rep_times = np.empty((batch.n_reps, p.outer_reps))
        for step in range(rep_times.shape[1]):
            jit = jitters[:, step]
            if profile.serialized:
                work = np.zeros(team.n_threads)
                sync_overhead = innerreps * (p.delay_time + cost * jit)
            else:
                work = np.full(team.n_threads, innerreps * p.delay_time)
                sync_overhead = innerreps * cost * jit
            dur = batch.execute(
                work,
                noise_mode=NoiseMode.SYNC_SUM,
                sync_overhead=sync_overhead,
                wake_delays=batch.wake0 if step == 0 else None,
                smt_efficiency=p.smt_efficiency,
            )
            rep_times[:, step] = dur
            batch.advance(dur + p.rep_gap)
        for run, row in enumerate(rows):
            m = ConstructMeasurement(
                construct=construct,
                innerreps=innerreps,
                reference=p.delay_time,
                rep_times=rep_times[run].copy(),
            )
            row[construct.value] = m.rep_times
            row[f"{construct.value}.overhead"] = np.maximum(m.overheads, 0.0)
    return rows


def _schedbench_rows(
    runner: "Runner", batch: _RegionBatch, bench: Any, schedules: tuple
) -> list[dict[str, Any]]:
    """Fused ``Schedbench.measure`` over every schedule, all runs at once."""
    from repro.bench.epcc.schedbench import ScheduleMeasurement

    p = bench.params
    ctx0 = batch.contexts[0]
    team = batch.team
    cost_params = ctx0.runtime.platform.sched_cost_params
    rows: list[dict[str, Any]] = [{} for _ in batch.contexts]
    for kind, chunk in schedules:
        noise_mode = (
            NoiseMode.MAX if kind is ScheduleKind.STATIC else NoiseMode.BALANCED
        )
        plan = plan_loop(
            kind,
            p.itersperthr * team.n_threads,
            team.n_threads,
            chunk,
            p.delay_time,
            cost_params,
            latency_factor=1.0 + 0.6 * team.outside_master_socket_fraction,
        )
        work0 = plan.per_thread_work + plan.per_thread_overhead
        jittered = team.uses_smt and p.smt_rep_jitter > 0
        if jittered:
            sigma = p.smt_rep_jitter
            streams = runner.rng_factory.rep_streams(
                batch.n_reps, "schedbench", kind.value, chunk
            )
            jitters = streams.lognormal(
                mean=-0.5 * sigma**2, sigma=sigma, size=p.outer_reps
            )
        sync_overhead = (
            ctx0.sync_cost.fork_cost(team)
            + ctx0.sync_cost.join_cost(team)
            + plan.imbalance_tail
        )
        barrier = ctx0.sync_cost.barrier_cost(team)
        rep_times = np.empty((batch.n_reps, p.outer_reps))
        for step in range(rep_times.shape[1]):
            work = work0 * jitters[:, step][:, None] if jittered else work0
            queue_floor: np.ndarray | float = 0.0
            if plan.queue_serialization > 0.0:
                f_now = batch.master_freq_at()
                queue_floor = plan.queue_serialization * (
                    batch.calibration_hz / f_now
                )
            dur = batch.execute(
                work,
                noise_mode=noise_mode,
                sync_overhead=sync_overhead,
                queue_floor=queue_floor,
                wake_delays=batch.wake0 if step == 0 else None,
                barrier_cost=barrier,
                smt_efficiency=p.smt_efficiency,
            )
            rep_times[:, step] = dur
            batch.advance(dur + p.rep_gap)
        for run, row in enumerate(rows):
            m = ScheduleMeasurement(
                kind=kind, chunk=chunk, rep_times=rep_times[run].copy()
            )
            row[m.label] = m.rep_times
    return rows


def _babelstream_rows(
    runner: "Runner", batch: _RegionBatch, bench: Any
) -> list[dict[str, Any]]:
    """Fused ``BabelStream.run`` over all runs at once (bound teams only)."""
    p = bench.params
    ctx0 = batch.contexts[0]
    team = batch.team
    n = team.n_threads
    machine = ctx0.machine
    bw_model = BandwidthModel(machine, ctx0.runtime.platform.mem_spec)
    current_cpus = list(team.cpus)
    placement = PagePlacement.first_touch(machine, current_cpus)

    kernels = tuple(StreamKernel)
    bases = []
    syncs = []
    for kernel in kernels:
        bytes_per_thread = np.full(n, p.kernel_bytes(kernel) / n)
        bases.append(
            bw_model.kernel_time(
                bytes_per_thread,
                current_cpus,
                placement,
                smt_shared=team.smt_shared,
            )
        )
        sync = 0.0
        if kernel is StreamKernel.DOT:
            sync = (
                ctx0.sync_cost.barrier_cost(team)
                + n * ctx0.sync_cost.params.atomic_rmw
            )
        syncs.append(sync)
    sigma = bw_model.jitter_sigma(
        current_cpus, placement, smt_shared=team.smt_shared
    )
    streams = runner.rng_factory.rep_streams(batch.n_reps, "babelstream")
    jitters = streams.lognormal(
        mean=-0.5 * sigma**2, sigma=sigma, size=p.num_times * len(kernels)
    )
    flat_times = np.empty((batch.n_reps, p.num_times * len(kernels)))
    for step in range(flat_times.shape[1]):
        kernel_idx = step % len(kernels)
        # scalar reference: base *= float(rng.lognormal(...)); work = full(n, base)
        base = bases[kernel_idx] * jitters[:, step]
        dur = batch.execute(
            np.broadcast_to(base[:, None], (batch.n_reps, n)),
            noise_mode=NoiseMode.MAX,
            sync_overhead=syncs[kernel_idx],
            freq_sensitive=False,
        )
        flat_times[:, step] = dur
        batch.advance(dur + p.kernel_gap)
    return [
        {
            kernel.value: flat_times[run, idx :: len(kernels)].copy()
            for idx, kernel in enumerate(kernels)
        }
        for run in range(flat_times.shape[0])
    ]


# -- entry point ----------------------------------------------------------------


def run_fused(runner: "Runner") -> ExperimentResult:
    """Evaluate every run of ``runner.config`` on the fused rep axis.

    Byte-identical to ``runner.run()`` for eligible configurations
    (:func:`fused_ineligibility` returns ``None``); raises
    :class:`~repro.errors.ConfigurationError` otherwise — callers that
    want automatic fallback should check eligibility first (the execution
    backends do).
    """
    reason = fused_ineligibility(runner.config)
    if reason is not None:
        raise ConfigurationError(f"config is not fused-eligible: {reason}")
    if runner.tracer.enabled:
        raise ConfigurationError(
            "the fused path emits no benchmark spans; trace with the scalar engine"
        )
    cfg = runner.config
    pairs = [runner.start_run_context(r) for r in range(cfg.runs)]
    contexts = [ctx for ctx, _ in pairs]
    batch = _RegionBatch(contexts)

    kind, bench, payload = runner._bench
    if kind == "syncbench":
        rows = _syncbench_rows(runner, batch, bench, payload)
    elif kind == "schedbench":
        rows = _schedbench_rows(runner, batch, bench, payload)
    elif kind == "babelstream":
        rows = _babelstream_rows(runner, batch, bench)
    else:  # pragma: no cover - guarded by fused_ineligibility
        raise ConfigurationError(f"no fused driver for benchmark {kind!r}")

    # propagate the per-run cursors so post-run capture sees the same
    # final timeline as the scalar engine
    for ctx, t_final in zip(contexts, batch.t):
        ctx.t = float(t_final)
    records = tuple(
        RunRecord(
            run_index=run,
            series=rows[run],
            freq_log=runner.capture_freq_log(ctx, logger),
        )
        for run, (ctx, logger) in enumerate(pairs)
    )
    return ExperimentResult(config=cfg, records=records)
