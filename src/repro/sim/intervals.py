"""Sorted disjoint interval algebra.

Noise accounting reduces to questions about unions of time intervals:
*how much of window [a, b) is stolen by noise on this hardware thread?* and
*given that noise preempts me entirely, when do I finish W seconds of work
started at t0?*  :class:`IntervalSet` answers both exactly and is the
workhorse of :mod:`repro.omp.region`.

Intervals are half-open ``[start, end)``.  The set is normalized on
construction: sorted, overlaps merged, empty intervals dropped.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["IntervalBatch", "IntervalSet"]


class IntervalSet:
    """An immutable union of disjoint, sorted half-open intervals."""

    __slots__ = ("starts", "ends")

    def __init__(self, starts: Sequence[float], ends: Sequence[float], *, _normalized: bool = False):
        s = np.asarray(starts, dtype=np.float64)
        e = np.asarray(ends, dtype=np.float64)
        if s.shape != e.shape or s.ndim != 1:
            raise ValueError("starts/ends must be 1-D arrays of equal length")
        if not _normalized:
            s, e = _normalize(s, e)
        object.__setattr__(self, "starts", s)
        object.__setattr__(self, "ends", e)

    def __setattr__(self, name, value):
        raise AttributeError("IntervalSet is immutable")

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(np.empty(0), np.empty(0), _normalized=True)

    @classmethod
    def from_events(cls, starts: Sequence[float], durations: Sequence[float]) -> "IntervalSet":
        """Build from event start times and durations (overlaps merged)."""
        s = np.asarray(starts, dtype=np.float64)
        d = np.asarray(durations, dtype=np.float64)
        if np.any(d < 0):
            raise ValueError("negative duration")
        return cls(s, s + d)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]]) -> "IntervalSet":
        pairs = list(pairs)
        if not pairs:
            return cls.empty()
        s, e = zip(*pairs)
        return cls(np.asarray(s), np.asarray(e))

    # -- basic properties ----------------------------------------------------

    def __len__(self) -> int:
        return int(self.starts.size)

    def __iter__(self):
        return iter(zip(self.starts.tolist(), self.ends.tolist()))

    @property
    def total(self) -> float:
        """Total measure (summed length) of the set."""
        return float(np.sum(self.ends - self.starts))

    def is_empty(self) -> bool:
        return self.starts.size == 0

    def contains_point(self, t: float) -> bool:
        idx = np.searchsorted(self.starts, t, side="right") - 1
        if idx < 0:
            return False
        return bool(t < self.ends[idx])

    # -- measure queries -----------------------------------------------------

    def overlap(self, a: float, b: float) -> float:
        """Measure of the intersection with window ``[a, b)``."""
        if b <= a or self.is_empty():
            return 0.0
        # NOTE: do not "optimize" this by slicing to the intersecting range
        # first — numpy's pairwise summation groups differently on a slice,
        # so the result is not bit-identical to summing the clamped full
        # array, and byte-stable results are part of the golden contract.
        lo = np.maximum(self.starts, a)
        hi = np.minimum(self.ends, b)
        return float(np.sum(np.maximum(0.0, hi - lo)))

    def clip(self, a: float, b: float) -> "IntervalSet":
        """The intersection with ``[a, b)`` as a new set."""
        if b <= a or self.is_empty():
            return IntervalSet.empty()
        lo = np.maximum(self.starts, a)
        hi = np.minimum(self.ends, b)
        keep = hi > lo
        return IntervalSet(lo[keep], hi[keep], _normalized=True)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(
            np.concatenate([self.starts, other.starts]),
            np.concatenate([self.ends, other.ends]),
        )

    def complement_within(self, a: float, b: float) -> "IntervalSet":
        """``[a, b)`` minus this set — the *free* time in the window."""
        if b <= a:
            return IntervalSet.empty()
        clipped = self.clip(a, b)
        if clipped.is_empty():
            return IntervalSet(np.asarray([a]), np.asarray([b]), _normalized=True)
        gaps_s = np.concatenate([[a], clipped.ends])
        gaps_e = np.concatenate([clipped.starts, [b]])
        keep = gaps_e > gaps_s
        return IntervalSet(gaps_s[keep], gaps_e[keep], _normalized=True)

    # -- the preemption query -------------------------------------------------

    def finish_time(self, start: float, work: float) -> float:
        """Completion time of *work* seconds of CPU started at *start*,
        assuming the CPU is unavailable whenever inside this set.

        The thread makes progress only in the gaps; if it starts inside a
        busy interval it waits until the interval ends.  ``work == 0``
        returns *start* even if *start* is inside a busy interval.
        """
        if work < 0:
            raise ValueError(f"negative work: {work}")
        if work == 0.0:
            return start
        if self.is_empty():
            return start + work
        remaining = float(work)
        t = float(start)
        # index of the first interval that could affect t
        i = int(np.searchsorted(self.ends, t, side="right"))
        n = len(self)
        while True:
            if i >= n:
                return t + remaining
            # free gap before interval i
            gap_end = float(self.starts[i])
            if t < gap_end:
                avail = gap_end - t
                if remaining <= avail:
                    return t + remaining
                remaining -= avail
            # skip busy interval i
            t = max(t, float(self.ends[i]))
            i += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet(n={len(self)}, total={self.total:.6g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return np.array_equal(self.starts, other.starts) and np.array_equal(
            self.ends, other.ends
        )

    def __hash__(self) -> int:
        return hash((self.starts.tobytes(), self.ends.tobytes()))


class IntervalBatch:
    """Length-grouped plane of :class:`IntervalSet` rows for batched queries.

    The fused rep-axis engine asks the same window question
    (:meth:`IntervalSet.overlap`) of many sets at once — one per
    (repetition, hardware thread).  Rows are grouped by interval count and
    each group stacked into a dense ``(k, L)`` matrix: a row of a dense
    C-contiguous matrix reduces along its last axis through exactly the
    same pairwise-summation routine as a standalone ``(L,)`` array, so a
    grouped ``np.sum(..., axis=1)`` over the clamped contributions is
    bit-identical per row to the scalar reference's full-array sum —
    with no padding elements and therefore no fallback, for any content.
    (Grouping, unlike padding, never changes a row's summation tree; see
    the NOTE in :meth:`IntervalSet.overlap` on why that tree is part of
    the golden contract.)

    ``b <= a`` windows and empty sets need no special casing: every
    clamped contribution is then ``0.0`` and the row sums to exactly the
    scalar early-return value.
    """

    __slots__ = ("sets", "_groups")

    def __init__(self, sets: Iterable["IntervalSet"]):
        self.sets = tuple(sets)
        by_len: dict[int, list[int]] = {}
        for k, s in enumerate(self.sets):
            by_len.setdefault(len(s), []).append(k)
        groups = []
        for length, indices in by_len.items():
            idx = np.asarray(indices, dtype=np.intp)
            if length == 0:
                groups.append((idx, None, None, None, None))
            else:
                starts = np.stack([self.sets[i].starts for i in indices])
                ends = np.stack([self.sets[i].ends for i in indices])
                # persistent scratch: the plane answers hundreds of window
                # queries per study; allocating multi-MB temporaries each
                # call costs more in page faults than the arithmetic itself
                groups.append(
                    (idx, starts, ends, np.empty_like(starts), np.empty_like(ends))
                )
        self._groups = tuple(groups)

    def __len__(self) -> int:
        return len(self.sets)

    def overlap_fused(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-row ``sets[k].overlap(a[k], b[k])``, bit-identical."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        totals = np.zeros(len(self.sets))
        for idx, starts, ends, lo, hi in self._groups:
            if starts is None:
                continue  # empty sets: scalar overlap returns 0.0
            np.maximum(starts, a[idx][:, None], out=lo)
            np.minimum(ends, b[idx][:, None], out=hi)
            np.subtract(hi, lo, out=hi)
            np.maximum(hi, 0.0, out=hi)
            totals[idx] = np.sum(hi, axis=1)
        return totals


def _normalize(starts: np.ndarray, ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort by start, drop empties, merge overlapping/touching intervals.

    Fully vectorized: with sorted starts, the running maximum of ends up to
    interval ``i-1`` is exactly the current merge group's reach, so group
    heads are the intervals starting strictly past it, and each group's end
    is the running maximum at the group's last member.  (A full-scale noise
    realization normalizes ~10^6 ticks per CPU; a Python merge loop was the
    dominant cost of building per-CPU interval sets.)
    """
    keep = ends > starts
    starts, ends = starts[keep], ends[keep]
    if starts.size == 0:
        return starts, ends
    order = np.argsort(starts, kind="stable")
    starts, ends = starts[order], ends[order]
    reach = np.maximum.accumulate(ends)
    head = np.empty(starts.size, dtype=bool)
    head[0] = True
    head[1:] = starts[1:] > reach[:-1]
    head_idx = np.flatnonzero(head)
    last_idx = np.append(head_idx[1:] - 1, starts.size - 1)
    return starts[head_idx].copy(), reach[last_idx].copy()
