#!/usr/bin/env python
"""Scalability study (the paper's Section 5.1 / Figures 1-3, scaled down).

Declares one thread-count sweep per platform with the Study API
(docs/study.md): the axis declaration replaces the hand-rolled config
loop, ``StudyResult.get`` looks results up by axis value, and
``group_summaries`` pools the variability per thread count.  Reports,
per count:

* BabelStream triad time (falls with threads — Figure 2),
* syncbench reduction overhead (grows with threads, jumping at socket
  boundaries — Figure 1),
* normalized min/max of repetition times (variability grows near
  saturation — Figure 3).

Run with::

    python examples/scaling_study.py
"""

from repro.harness import ExperimentConfig, Study
from repro.harness.report import render_series
from repro.stats import summarize

SWEEPS = {"vera": (2, 8, 16, 30), "dardel": (4, 16, 64, 128)}


def main() -> None:
    for platform, sweep in SWEEPS.items():
        base = ExperimentConfig(
            platform=platform, places="cores", proc_bind="close",
            runs=2, seed=3,
        )
        stream = (
            Study(
                base.with_overrides(
                    benchmark="babelstream",
                    benchmark_params={"num_times": 10},
                ),
                name=f"stream-scaling-{platform}",
            )
            .grid(num_threads=list(sweep))
            .run()
        )
        sync = (
            Study(
                base.with_overrides(
                    benchmark="syncbench",
                    benchmark_params={"outer_reps": 20,
                                      "constructs": ("reduction",)},
                ),
                name=f"sync-scaling-{platform}",
            )
            .grid(num_threads=list(sweep))
            .run()
        )

        triad_ms, overhead_us, norm_max = [], [], []
        for n in sweep:
            triad = stream.get(num_threads=n).runs_matrix("triad")
            triad_ms.append(float(triad.mean()) * 1e3)
            result = sync.get(num_threads=n)
            overhead = result.runs_matrix("reduction.overhead")
            overhead_us.append(float(overhead.mean()) * 1e6)
            norm_max.append(
                max(summarize(row).norm_max
                    for row in result.runs_matrix("reduction"))
            )
        pooled = sync.group_summaries("num_threads", label="reduction")

        print(f"== {platform} ==")
        print(render_series("triad time (ms)", sweep, triad_ms, unit="ms"))
        print(render_series("reduction overhead (us)", sweep, overhead_us,
                            unit="us"))
        print(render_series("worst norm max", sweep, norm_max))
        print(render_series("pooled CV", sweep,
                            [pooled[n].cv for n in sweep]))
        print()


if __name__ == "__main__":
    main()
