#!/usr/bin/env python
"""Scalability study (the paper's Section 5.1 / Figures 1-3, scaled down).

Sweeps thread counts on both platform models and reports, per count:

* BabelStream triad time (falls with threads — Figure 2),
* syncbench reduction overhead (grows with threads, jumping at socket
  boundaries — Figure 1),
* normalized min/max of repetition times (variability grows near
  saturation — Figure 3).

Run with::

    python examples/scaling_study.py
"""

from repro.harness import ExperimentConfig, Runner
from repro.harness.report import render_series
from repro.stats import summarize

SWEEPS = {"vera": (2, 8, 16, 30), "dardel": (4, 16, 64, 128)}


def main() -> None:
    for platform, sweep in SWEEPS.items():
        triad_ms, overhead_us, norm_max = [], [], []
        for n in sweep:
            stream = Runner(
                ExperimentConfig(
                    platform=platform, benchmark="babelstream", num_threads=n,
                    places="cores", proc_bind="close", runs=2, seed=3,
                    benchmark_params={"num_times": 10},
                )
            ).run()
            triad = stream.runs_matrix("triad")
            triad_ms.append(float(triad.mean()) * 1e3)

            sync = Runner(
                ExperimentConfig(
                    platform=platform, benchmark="syncbench", num_threads=n,
                    places="cores", proc_bind="close", runs=2, seed=3,
                    benchmark_params={"outer_reps": 20,
                                      "constructs": ("reduction",)},
                )
            ).run()
            overhead = sync.runs_matrix("reduction.overhead")
            overhead_us.append(float(overhead.mean()) * 1e6)
            norm_max.append(
                max(summarize(row).norm_max
                    for row in sync.runs_matrix("reduction"))
            )

        print(f"== {platform} ==")
        print(render_series("triad time (ms)", sweep, triad_ms, unit="ms"))
        print(render_series("reduction overhead (us)", sweep, overhead_us,
                            unit="us"))
        print(render_series("worst norm max", sweep, norm_max))
        print()


if __name__ == "__main__":
    main()
