#!/usr/bin/env python
"""SMT study (the paper's Section 5.3 / Figure 5, scaled down).

Same thread count, two placements on the Dardel model:

* **ST** — ``OMP_PLACES=cores``: one thread per physical core, the second
  hardware thread left free to absorb OS activity;
* **MT** — ``OMP_PLACES=threads``: both hardware threads of each core are
  packed, halving the core count.

The paper's finding: MT makes execution markedly less stable (higher CV),
especially for synchronization constructs.

Run with::

    python examples/smt_study.py
"""

import numpy as np

from repro.harness import ExperimentConfig, Runner
from repro.stats import summarize

CONSTRUCTS = ("for", "single", "ordered", "reduction")


def cv_per_construct(places: str) -> dict[str, float]:
    cfg = ExperimentConfig(
        platform="dardel",
        benchmark="syncbench",
        num_threads=32,
        places=places,
        proc_bind="close",
        runs=4,
        seed=21,
        benchmark_params={"outer_reps": 40, "constructs": CONSTRUCTS},
    )
    result = Runner(cfg).run()
    return {
        c: float(np.mean([summarize(row).cv for row in result.runs_matrix(c)]))
        for c in CONSTRUCTS
    }


def main() -> None:
    st = cv_per_construct("cores")    # 32 cores, siblings free
    mt = cv_per_construct("threads")  # 16 cores, both siblings packed

    print("syncbench @ dardel, 32 threads: mean CV per construct\n")
    print(f"{'construct':>12} {'ST':>9} {'MT':>9} {'MT/ST':>7}")
    for c in CONSTRUCTS:
        ratio = mt[c] / st[c] if st[c] else float("inf")
        print(f"{c:>12} {st[c]:>9.4f} {mt[c]:>9.4f} {ratio:>6.1f}x")
    print(
        "\npaper (Figure 5b/5e): the ST configuration exhibits better"
        "\nperformance stability; MT inflates the CV of for/single/"
        "ordered/reduction."
    )


if __name__ == "__main__":
    main()
