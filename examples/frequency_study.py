#!/usr/bin/env python
"""Frequency-variation study (the paper's Section 5.4 / Figures 6-7).

Runs schedbench on 16 Vera cores chosen two ways — all from one NUMA
domain vs. split across both — with the background frequency logger
sampling every core's ``scaling_cur_freq`` from a spare core, exactly as
the paper's logger script does.  Cross-NUMA teams trigger transient
frequency dips; the dips correlate with slower, more variable repetitions.

The two placements are one ``places`` axis of a Study (docs/study.md);
both configurations run through one shared sweep and are looked up by
axis value afterwards.

Run with::

    python examples/frequency_study.py
"""

import numpy as np

from repro.harness import ExperimentConfig, Study
from repro.stats import summarize

PLACEMENTS = (
    ("one NUMA domain (cpus 0-15)", "{0:16}"),
    ("two NUMA domains (cpus 0-7 + 16-23)", "{0:8},{16:8}"),
)


def main() -> None:
    study = Study(
        ExperimentConfig(
            platform="vera",
            benchmark="schedbench",
            num_threads=16,
            proc_bind="close",
            schedule="dynamic",
            schedule_chunk=1,
            runs=4,
            seed=13,
            benchmark_params={"outer_reps": 25},
            freq_logging=True,
            logger_cpu=31,  # spare core on the second socket
        ),
        name="frequency-study",
        description="1 vs 2 NUMA domains under the frequency logger",
    ).grid(places=[places for _name, places in PLACEMENTS])
    by_places = study.run().by("places")

    for name, places in PLACEMENTS:
        result = by_places[places]
        matrix = result.runs_matrix("dynamic_1")
        s = summarize(matrix.ravel())
        logs = [r.freq_log for r in result.records]
        dip_pct = float(np.mean([log.band_occupancy(2.6) for log in logs])) * 100
        lo = min(log.min_freq_ghz() for log in logs)
        hi = max(log.max_freq_ghz() for log in logs)
        print(f"== {name} ==")
        print(f"  mean {s.mean * 1e3:9.2f} ms | CV {s.cv:.4f} | "
              f"norm max {s.norm_max:.3f}")
        print(f"  logged frequency span {lo:.2f}-{hi:.2f} GHz; "
              f"time below 2.6 GHz: {dip_pct:.2f}%")
        print(f"  {logs[0].summary()}")
        print()
    print("paper (Figure 6): the cross-NUMA configuration shows frequent")
    print("frequency dips and correspondingly higher execution-time")
    print("variability; the single-domain runs stay flat.")


if __name__ == "__main__":
    main()
