#!/usr/bin/env python
"""Quickstart: measure OpenMP synchronization variability on a simulated node.

Runs the EPCC syncbench reduction micro-benchmark on the Vera model
(2x Xeon Gold 6130), 5 runs x 30 repetitions, pinned with
``OMP_PLACES=cores OMP_PROC_BIND=close``, and prints the per-run
variability report — the same table the paper's methodology produces.

Run with::

    python examples/quickstart.py
"""

from repro.harness import ExperimentConfig, Runner

config = ExperimentConfig(
    platform="vera",
    benchmark="syncbench",
    num_threads=16,
    places="cores",
    proc_bind="close",
    runs=5,
    seed=42,
    benchmark_params={
        "outer_reps": 30,
        "constructs": ("reduction", "barrier", "critical"),
    },
)


def main() -> None:
    print(f"config: {config.display_label}")
    print(f"env:    {config.omp_environment().describe()}")
    print()
    result = Runner(config).run()
    for label in ("reduction", "barrier", "critical"):
        report = result.report(label)
        print(report.render())
        print()
    # the overhead series carries EPCC's reported per-construct metric
    overhead = result.runs_matrix("reduction.overhead")
    print(
        f"reduction overhead: {overhead.mean() * 1e6:.2f} us mean over "
        f"{overhead.size} repetitions"
    )


if __name__ == "__main__":
    main()
