#!/usr/bin/env python
"""Pinning study (the paper's Section 5.2 / Figure 4, scaled down).

Compares ``OMP_PROC_BIND=false`` (OS-placed threads) against
``OMP_PLACES=cores OMP_PROC_BIND=close`` for the syncbench reduction
micro-benchmark at 128 threads on the Dardel model, then quantifies the
difference with distribution-free statistics.

Run with::

    python examples/pinning_study.py
"""

import numpy as np

from repro.harness import ExperimentConfig, Runner
from repro.stats import compare_samples, summarize


def run(bind: str) -> np.ndarray:
    cfg = ExperimentConfig(
        platform="dardel",
        benchmark="syncbench",
        num_threads=128,
        places="cores" if bind != "false" else None,
        proc_bind=bind,
        runs=5,
        seed=7,
        benchmark_params={"outer_reps": 40, "constructs": ("reduction",)},
    )
    return Runner(cfg).run().runs_matrix("reduction")


def main() -> None:
    unpinned = run("false")
    pinned = run("close")

    print("syncbench(reduction) @ dardel, 128 threads, 5 runs x 40 reps\n")
    for name, matrix in (("unpinned", unpinned), ("pinned", pinned)):
        s = summarize(matrix.ravel())
        print(
            f"{name:>9}: mean {s.mean * 1e6:10.1f} us | min {s.minimum * 1e6:9.1f}"
            f" | max {s.maximum * 1e6:12.1f} | max/min {s.spread_ratio:9.1f}x"
            f" | CV {s.cv:.3f}"
        )

    r = compare_samples(unpinned.ravel(), pinned.ravel())
    print(
        f"\nunpinned vs pinned: mean ratio {r.mean_ratio:.1f}x, "
        f"variance ratio {r.variance_ratio:.1f}x, "
        f"KS p-value {r.ks_pvalue:.2e}"
    )
    print(
        "\npaper (Figure 4b/4e): unpinned runs span >3 orders of magnitude;"
        "\npinning almost eliminates run-to-run variability."
    )


if __name__ == "__main__":
    main()
