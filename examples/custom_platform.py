#!/usr/bin/env python
"""Build a custom platform and study it.

Demonstrates the substrate APIs directly: define a hypothetical 4-socket
node with its own boost table, memory system and noise profile, then run
BabelStream on it and inspect how the bandwidth model distributes traffic.

Run with::

    python examples/custom_platform.py
"""

import numpy as np

from repro.freq import BoostTable, DipProcess, FrequencySpec
from repro.harness import ExperimentConfig, Runner
from repro.mem import BandwidthModel, MemorySpec, PagePlacement
from repro.osnoise import NoiseProfile, PoissonSource, TimerTickSource
from repro.platform import Platform
import repro.platform as platform_module
from repro.topology import TopologyBuilder
from repro.units import gb_per_s, ghz, us


def build_platform() -> Platform:
    machine = (
        TopologyBuilder("quad")
        .add_sockets(4, numa_per_socket=2, cores_per_numa=8, smt=2)
        .build()
    )
    return Platform(
        name="quad",
        machine=machine,
        freq_spec=FrequencySpec(
            min_hz=ghz(1.2),
            base_hz=ghz(2.4),
            boost=BoostTable.from_ghz([(4, 3.6), (16, 3.2), (64, 2.9)]),
            jitter_amplitude=0.003,
            jitter_rate=2.0,
            dips=DipProcess(base_rate=0.05, cross_numa_rate=1.0),
        ),
        mem_spec=MemorySpec(numa_bw=gb_per_s(60.0), core_bw=gb_per_s(16.0)),
        noise_profile=NoiseProfile(
            "quad",
            (
                TimerTickSource(hz=250.0, duration_mean=us(2.0),
                                duration_jitter=us(1.0)),
                PoissonSource(rate=3.0, duration_median=us(180), kind="daemon"),
            ),
        ),
    )


def main() -> None:
    plat = build_platform()
    print(plat.describe())
    print(plat.machine.summary())

    # inspect the bandwidth model directly
    bw = BandwidthModel(plat.machine, plat.mem_spec)
    cpus = [core.cpu_ids[0] for core in plat.machine.cores[:16]]
    placement = PagePlacement.first_touch(plat.machine, cpus)
    rates = bw.solve(cpus, placement)
    print(f"\n16 local streams: {rates.sum() / 1e9:.0f} GB/s aggregate "
          f"({rates.min() / 1e9:.1f}-{rates.max() / 1e9:.1f} GB/s per thread)")

    remote = PagePlacement(home_domain=tuple([7] * len(cpus)))
    remote_rates = bw.solve(cpus, remote)
    print(f"same threads, all pages on domain 7: "
          f"{remote_rates.sum() / 1e9:.0f} GB/s aggregate")

    # register the platform so the harness can use it by name
    platform_module._PLATFORMS["quad"] = build_platform
    result = Runner(
        ExperimentConfig(
            platform="quad", benchmark="babelstream", num_threads=32,
            places="cores", proc_bind="close", runs=2, seed=1,
            benchmark_params={"num_times": 8},
        )
    ).run()
    triad = result.runs_matrix("triad")
    print(f"\nBabelStream triad @32 threads: {triad.mean() * 1e3:.2f} ms mean, "
          f"{np.min(triad) * 1e3:.2f}-{np.max(triad) * 1e3:.2f} ms range")


if __name__ == "__main__":
    main()
